//! The declarative scenario API: campaigns as data.
//!
//! The paper's evaluation (§V) is a grid — protocol × network size ×
//! clustering threshold × workload. Instead of one hand-wired driver per
//! grid cell, a [`Scenario`] describes a cell family declaratively:
//! environment ([`bcbpt_net::NetConfig`]), protocol
//! ([`bcbpt_cluster::ProtocolSpec`], resolved through a
//! [`ProtocolRegistry`]), a [`Workload`], and an optional [`Sweep`] over
//! the paper's axes. Scenarios are fully serde round-trippable, so every
//! experiment is a JSON file under `scenarios/` and one driver binary
//! (`scenario run`) replaces the old per-figure binaries.
//!
//! Running a scenario yields a [`ScenarioOutcome`]: one serializable
//! report type for what used to be four divergent return shapes
//! (campaigns, fork stats, attack stats, overhead tables), with shared
//! [`Summary`]/[`Ecdf`] accessors and the table/figure renderers the old
//! drivers printed.

use crate::adversary::{adversarial_campaign_in_with_threads, AdversaryReport, ADVERSARY_COLUMNS};
use crate::attacks::{
    eclipse_exposure_in, partition_resilience_in, EclipseReport, PartitionReport,
};
use crate::experiment::{CampaignResult, ExperimentConfig};
use crate::forks::{fork_experiment_in, mining_campaign_in, ForkReport};
use crate::overhead::{OverheadReport, OVERHEAD_COLUMNS};
use crate::session::{ScenarioSession, StopRule};
use bcbpt_adversary::AdversaryStrategy;
use bcbpt_cluster::{Protocol, ProtocolRegistry, ProtocolSpec};
use bcbpt_geo::ChurnModel;
use bcbpt_net::{NetConfig, RelaySpec};
use bcbpt_stats::{Ecdf, Figure, Series, StatTable, Summary};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Number of points on each rendered CDF curve.
const CURVE_POINTS: usize = 40;

/// What the scenario drives the network with.
///
/// Each variant corresponds to one of the repository's experiment
/// methodologies; the variant's fields are the knobs that used to be
/// hard-coded in a driver binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// The paper's measuring-node methodology (§V.B): repeated watched
    /// transaction floods, harvesting `Δt(m,n)` and arrival delays.
    TxFlood,
    /// Proof-of-work on top of the relay: blocks as a Poisson process,
    /// measuring stale-block rate and tip agreement.
    Mining {
        /// Mean block inter-arrival, ms.
        block_interval_ms: f64,
        /// Mining window after warmup, ms.
        duration_ms: f64,
    },
    /// Partition attack (§V.C future work): cut every inter-cluster link
    /// and measure remaining reachability.
    Partition,
    /// Eclipse attack (§V.C future work): a latency-concentrated adversary
    /// and the share of victim connections it captures.
    Eclipse {
        /// Fraction of the network the adversary controls, in `(0, 1)`.
        adversary_fraction: f64,
        /// Number of victims measured.
        victims: usize,
    },
    /// The §IV.A future-work overhead evaluation: a normal campaign whose
    /// report is the per-node probe/control/gossip/relay budget.
    OverheadProbe,
    /// A transaction-flood campaign under aggressive churn: every node
    /// follows the given session/offline model during warmup and
    /// measurement, stressing relay resilience.
    ChurnBurst {
        /// Median session length, ms.
        median_session_ms: f64,
        /// Lognormal session shape parameter (0 ⇒ deterministic).
        session_sigma: f64,
        /// Mean offline gap before rejoin, ms.
        mean_offline_ms: f64,
    },
    /// A behavioural adversary inside the loop: `attackers` nodes execute
    /// `strategy` (ping spoofing, relay delaying or withholding) from
    /// before warmup, and a full campaign measures what they achieve
    /// against a clean baseline of the same cell.
    Adversarial {
        /// What the attacker-controlled nodes do.
        strategy: AdversaryStrategy,
        /// Number of attacker-controlled nodes (≥ 1; must leave at least
        /// one honest node per cell).
        attackers: usize,
    },
}

impl Workload {
    /// Short family label used by `scenario list` and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Workload::TxFlood => "tx-flood",
            Workload::Mining { .. } => "mining",
            Workload::Partition => "partition",
            Workload::Eclipse { .. } => "eclipse",
            Workload::OverheadProbe => "overhead-probe",
            Workload::ChurnBurst { .. } => "churn-burst",
            Workload::Adversarial { .. } => "adversarial",
        }
    }

    /// Whether the workload runs measuring-node campaigns (and therefore
    /// needs `runs`/`window_ms`).
    pub fn is_campaign(&self) -> bool {
        matches!(
            self,
            Workload::TxFlood
                | Workload::OverheadProbe
                | Workload::ChurnBurst { .. }
                | Workload::Adversarial { .. }
        )
    }

    /// Validates the workload parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let positive = |value: f64, what: &str| {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(format!("{what} must be positive and finite, got {value}"))
            }
        };
        match *self {
            Workload::TxFlood | Workload::Partition | Workload::OverheadProbe => Ok(()),
            Workload::Mining {
                block_interval_ms,
                duration_ms,
            } => {
                positive(block_interval_ms, "block_interval_ms")?;
                positive(duration_ms, "duration_ms")
            }
            Workload::Eclipse {
                adversary_fraction,
                victims,
            } => {
                if !(adversary_fraction > 0.0 && adversary_fraction < 1.0) {
                    return Err(format!(
                        "adversary_fraction must be in (0, 1), got {adversary_fraction}"
                    ));
                }
                if victims == 0 {
                    return Err("victims must be >= 1".to_string());
                }
                Ok(())
            }
            Workload::ChurnBurst {
                median_session_ms,
                session_sigma,
                mean_offline_ms,
            } => {
                positive(median_session_ms, "median_session_ms")?;
                positive(mean_offline_ms, "mean_offline_ms")?;
                if !session_sigma.is_finite() || session_sigma < 0.0 {
                    return Err(format!(
                        "session_sigma must be non-negative and finite, got {session_sigma}"
                    ));
                }
                Ok(())
            }
            Workload::Adversarial {
                ref strategy,
                attackers,
            } => {
                strategy.validate()?;
                if attackers == 0 {
                    return Err(
                        "adversarial workload needs attackers >= 1 (a zero-attacker run \
                         is just TxFlood)"
                            .to_string(),
                    );
                }
                Ok(())
            }
        }
    }
}

/// The paper's sweep axes, as data.
///
/// At most one of `protocols` / `thresholds_ms` may be non-empty (a
/// threshold sweep *is* a protocol sweep over `bcbpt(dt=…)`); `num_nodes`
/// and `relays` compose with either. Empty axes fall back to the
/// scenario's base protocol / network size / relay strategy, so an absent
/// sweep means a single cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sweep {
    /// Protocol axis: one cell per spec (Fig. 3's protocol comparison,
    /// Fig. 4's threshold set).
    pub protocols: Vec<ProtocolSpec>,
    /// BCBPT threshold axis: one cell per `Dth` in milliseconds.
    pub thresholds_ms: Vec<f64>,
    /// Network-size axis: one cell per population.
    pub num_nodes: Vec<usize>,
    /// Block-relay axis: one cell per relay spec (e.g. `"full"`,
    /// `"compact"`, `"rlnc(chunks=16)"`), resolved through
    /// [`bcbpt_relay::registry`]. Empty means the scenario's base relay.
    pub relays: Vec<RelaySpec>,
}

// Hand-written serde: the `relays` axis is omitted when empty so every
// pre-relay scenario file (and its content digest) stays byte-identical,
// and files without the key still parse.
impl Serialize for Sweep {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("protocols".to_string(), self.protocols.to_value()),
            ("thresholds_ms".to_string(), self.thresholds_ms.to_value()),
            ("num_nodes".to_string(), self.num_nodes.to_value()),
        ];
        if !self.relays.is_empty() {
            fields.push(("relays".to_string(), self.relays.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for Sweep {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for Sweep"))?;
        let relays = match serde::map_get(m, "relays") {
            serde::Value::Null => Vec::new(),
            other => Deserialize::from_value(other)?,
        };
        Ok(Sweep {
            protocols: Deserialize::from_value(serde::map_get(m, "protocols"))?,
            thresholds_ms: Deserialize::from_value(serde::map_get(m, "thresholds_ms"))?,
            num_nodes: Deserialize::from_value(serde::map_get(m, "num_nodes"))?,
            relays,
        })
    }
}

impl Sweep {
    /// A sweep over protocol specs.
    pub fn over_protocols<P: Into<ProtocolSpec>>(protocols: impl IntoIterator<Item = P>) -> Self {
        Sweep {
            protocols: protocols.into_iter().map(Into::into).collect(),
            ..Sweep::default()
        }
    }

    /// A sweep over BCBPT clustering thresholds.
    pub fn over_thresholds_ms(thresholds_ms: impl IntoIterator<Item = f64>) -> Self {
        Sweep {
            thresholds_ms: thresholds_ms.into_iter().collect(),
            ..Sweep::default()
        }
    }

    /// A sweep over network sizes.
    pub fn over_num_nodes(num_nodes: impl IntoIterator<Item = usize>) -> Self {
        Sweep {
            num_nodes: num_nodes.into_iter().collect(),
            ..Sweep::default()
        }
    }

    /// A sweep over block-relay strategies.
    pub fn over_relays<R: Into<RelaySpec>>(relays: impl IntoIterator<Item = R>) -> Self {
        Sweep {
            relays: relays.into_iter().map(Into::into).collect(),
            ..Sweep::default()
        }
    }

    /// Human-readable summary of the active axes, e.g.
    /// `"3 protocols"` or `"8 thresholds × 2 sizes"` (`"single cell"`
    /// when every axis is empty) — what `scenario list` prints.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if !self.protocols.is_empty() {
            parts.push(format!("{} protocols", self.protocols.len()));
        }
        if !self.thresholds_ms.is_empty() {
            parts.push(format!("{} thresholds", self.thresholds_ms.len()));
        }
        if !self.num_nodes.is_empty() {
            parts.push(format!("{} sizes", self.num_nodes.len()));
        }
        if !self.relays.is_empty() {
            parts.push(format!("{} relays", self.relays.len()));
        }
        if parts.is_empty() {
            "single cell".to_string()
        } else {
            parts.join(" × ")
        }
    }
}

/// One expanded sweep cell: the protocol and environment overrides a
/// single experiment runs with.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCell {
    /// Row label in tables and figures.
    pub label: String,
    /// The protocol of this cell.
    pub protocol: ProtocolSpec,
    /// The network size of this cell.
    pub num_nodes: usize,
    /// The block-relay strategy of this cell (`None` keeps the legacy
    /// full-body path with waste accounting off).
    pub relay: Option<RelaySpec>,
}

/// A declarative experiment description — the unit the `scenario` driver
/// binary loads, validates and runs.
///
/// # Examples
///
/// Declaring and running a (tiny) protocol-comparison scenario:
///
/// ```no_run
/// use bcbpt_core::Scenario;
///
/// let mut scenario = Scenario::builtin("fig3").expect("built-in");
/// scenario.net.num_nodes = 60;
/// scenario.runs = 2;
/// let outcome = scenario.run()?;
/// println!("{}", outcome.render());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name; used as the report caption and the `scenarios/` file
    /// stem.
    pub name: String,
    /// The simulated network environment.
    pub net: NetConfig,
    /// Base protocol (used when the sweep has no protocol axis).
    pub protocol: ProtocolSpec,
    /// Optional base block-relay strategy (used when the sweep has no
    /// relay axis); `None` keeps the legacy full-body path with waste
    /// accounting off.
    pub relay: Option<RelaySpec>,
    /// What to drive the network with.
    pub workload: Workload,
    /// Optional sweep over protocol / threshold / size axes.
    pub sweep: Option<Sweep>,
    /// Optional adaptive run budget ([`StopRule`]); absent means
    /// [`StopRule::FixedRuns`] — consume the whole `runs` budget, the
    /// batch behaviour. Only streaming campaign workloads (tx-flood,
    /// churn-burst, overhead-probe) may declare an adaptive rule.
    pub stop: Option<StopRule>,
    /// Measuring runs per campaign cell (paper: ≈1000). An adaptive
    /// `stop` rule may end a cell earlier; this stays the hard ceiling.
    pub runs: usize,
    /// Cluster-formation warmup before measurement, ms.
    pub warmup_ms: f64,
    /// Measurement window per run, ms.
    pub window_ms: f64,
    /// Master seed; every stream derives from it.
    pub seed: u64,
}

// Hand-written serde: the optional `relay` field is omitted when `None`,
// so every pre-relay scenario file — and, crucially, its canonical
// content digest — stays byte-identical. Field order matches declaration
// order (the digest's canonicality contract).
impl Serialize for Scenario {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("name".to_string(), self.name.to_value()),
            ("net".to_string(), self.net.to_value()),
            ("protocol".to_string(), self.protocol.to_value()),
        ];
        if let Some(relay) = &self.relay {
            fields.push(("relay".to_string(), relay.to_value()));
        }
        fields.extend([
            ("workload".to_string(), self.workload.to_value()),
            ("sweep".to_string(), self.sweep.to_value()),
            ("stop".to_string(), self.stop.to_value()),
            ("runs".to_string(), self.runs.to_value()),
            ("warmup_ms".to_string(), self.warmup_ms.to_value()),
            ("window_ms".to_string(), self.window_ms.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ]);
        serde::Value::Map(fields)
    }
}

impl Deserialize for Scenario {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for Scenario"))?;
        Ok(Scenario {
            name: Deserialize::from_value(serde::map_get(m, "name"))?,
            net: Deserialize::from_value(serde::map_get(m, "net"))?,
            protocol: Deserialize::from_value(serde::map_get(m, "protocol"))?,
            relay: Deserialize::from_value(serde::map_get(m, "relay"))?,
            workload: Deserialize::from_value(serde::map_get(m, "workload"))?,
            sweep: Deserialize::from_value(serde::map_get(m, "sweep"))?,
            stop: Deserialize::from_value(serde::map_get(m, "stop"))?,
            runs: Deserialize::from_value(serde::map_get(m, "runs"))?,
            warmup_ms: Deserialize::from_value(serde::map_get(m, "warmup_ms"))?,
            window_ms: Deserialize::from_value(serde::map_get(m, "window_ms"))?,
            seed: Deserialize::from_value(serde::map_get(m, "seed"))?,
        })
    }
}

impl Scenario {
    /// Wraps an [`ExperimentConfig`] environment into a named scenario.
    pub fn from_experiment(
        name: impl Into<String>,
        base: &ExperimentConfig,
        workload: Workload,
    ) -> Self {
        Scenario {
            name: name.into(),
            net: base.net.clone(),
            protocol: base.protocol.clone(),
            relay: base.relay.clone(),
            workload,
            sweep: None,
            stop: None,
            runs: base.runs,
            warmup_ms: base.warmup_ms,
            window_ms: base.window_ms,
            seed: base.seed,
        }
    }

    /// Sets the sweep, builder-style.
    #[must_use]
    pub fn with_sweep(mut self, sweep: Sweep) -> Self {
        self.sweep = Some(sweep);
        self
    }

    /// Declares an adaptive run budget, builder-style.
    #[must_use]
    pub fn with_stop(mut self, stop: StopRule) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Serializes the scenario as human-editable, indented JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serializes")
    }

    /// The scenario's canonical content digest: FNV-1a (64-bit) over the
    /// canonical compact JSON serialization. Canonical because the derive
    /// serializer emits struct fields in declaration order — parsing a
    /// field-reordered or re-indented JSON file and digesting the result
    /// yields the same value, while any content change (a different seed,
    /// one more run) yields a different one. This is the key of the
    /// service's outcome store: two submissions with equal digests
    /// describe byte-identical experiments, so the stored outcome can be
    /// replayed verbatim. Distinct by construction from the
    /// shard-identity digest (`ShardPlan`/`PartialOutcome`), which
    /// prefixes the shard wire-format version so checkpoint compatibility
    /// can break without invalidating content equality.
    pub fn digest(&self) -> u64 {
        let json = serde_json::to_string(self).expect("scenario serializes");
        crate::shard::fnv1a64(json.as_bytes())
    }

    /// Parses a scenario from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid scenario: {e}"))
    }

    /// Validates the scenario against the built-in protocol set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_in(&ProtocolRegistry::builtins())
    }

    /// Validates the scenario against `registry`: structural constraints,
    /// workload parameters, and that every cell's protocol resolves and
    /// every cell's network configuration is consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate_in(&self, registry: &ProtocolRegistry) -> Result<(), String> {
        if self.name.trim().is_empty() {
            return Err("scenario name must not be empty".to_string());
        }
        self.workload.validate()?;
        if !self.warmup_ms.is_finite() || self.warmup_ms < 0.0 {
            return Err(format!(
                "warmup_ms must be non-negative and finite, got {}",
                self.warmup_ms
            ));
        }
        if self.workload.is_campaign() {
            if self.runs == 0 {
                return Err(format!("{} workload needs runs >= 1", self.workload.kind()));
            }
            if !self.window_ms.is_finite() || self.window_ms <= 0.0 {
                return Err(format!(
                    "window_ms must be positive and finite, got {}",
                    self.window_ms
                ));
            }
        }
        if let Some(stop) = &self.stop {
            self.validate_stop_rule(stop)?;
        }
        if let Some(sweep) = &self.sweep {
            if !sweep.protocols.is_empty() && !sweep.thresholds_ms.is_empty() {
                return Err(
                    "sweep cannot set both protocols and thresholds_ms (a threshold sweep \
                     is a protocol sweep over bcbpt(dt=…))"
                        .to_string(),
                );
            }
            for &dt in &sweep.thresholds_ms {
                if !dt.is_finite() || dt <= 0.0 {
                    return Err(format!(
                        "sweep threshold must be positive and finite, got {dt}"
                    ));
                }
            }
            let mut seen_relays = std::collections::BTreeSet::new();
            for relay in &sweep.relays {
                if relay.to_string().trim().is_empty() {
                    return Err("sweep relay spec must not be empty".to_string());
                }
                if !seen_relays.insert(relay.clone()) {
                    return Err(format!(
                        "sweep relay {relay:?} appears twice — relay labels must be unique"
                    ));
                }
            }
        }
        let relay_registry = bcbpt_relay::registry();
        for cell in self.cells() {
            let cfg = self.cell_config(&cell);
            cfg.net
                .validate()
                .map_err(|e| format!("cell {:?}: {e}", cell.label))?;
            registry
                .build(&cell.protocol)
                .map_err(|e| format!("cell {:?}: {e}", cell.label))?;
            if let Some(relay) = &cell.relay {
                relay_registry
                    .build(relay)
                    .map_err(|e| format!("cell {:?}: {e}", cell.label))?;
            }
            // Population-relative workload constraints are per cell: a size
            // sweep may shrink the network below the attacker/victim count.
            match self.workload {
                Workload::Adversarial { attackers, .. } if attackers >= cell.num_nodes => {
                    return Err(format!(
                        "cell {:?}: attackers ({attackers}) must be fewer than nodes ({})",
                        cell.label, cell.num_nodes
                    ));
                }
                Workload::Eclipse { victims, .. } if victims > cell.num_nodes => {
                    return Err(format!(
                        "cell {:?}: victims ({victims}) exceed nodes ({})",
                        cell.label, cell.num_nodes
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Expands the sweep into concrete cells, protocol axis outermost.
    pub fn cells(&self) -> Vec<ScenarioCell> {
        let sweep = self.sweep.clone().unwrap_or_default();
        let protocols: Vec<ProtocolSpec> = if !sweep.thresholds_ms.is_empty() {
            sweep
                .thresholds_ms
                .iter()
                .map(|&dt| ProtocolSpec::from(Protocol::Bcbpt { threshold_ms: dt }))
                .collect()
        } else if !sweep.protocols.is_empty() {
            sweep.protocols.clone()
        } else {
            vec![self.protocol.clone()]
        };
        let sizes: Vec<usize> = if sweep.num_nodes.is_empty() {
            vec![self.net.num_nodes]
        } else {
            sweep.num_nodes.clone()
        };
        let relays: Vec<Option<RelaySpec>> = if sweep.relays.is_empty() {
            vec![self.relay.clone()]
        } else {
            sweep.relays.iter().cloned().map(Some).collect()
        };
        let size_axis = !sweep.num_nodes.is_empty();
        let relay_axis = !sweep.relays.is_empty();
        let mut cells = Vec::with_capacity(protocols.len() * relays.len() * sizes.len());
        for protocol in &protocols {
            for relay in &relays {
                for &num_nodes in &sizes {
                    let mut label = protocol.to_string();
                    if relay_axis {
                        if let Some(relay) = relay {
                            label.push_str(&format!(" × {relay}"));
                        }
                    }
                    if size_axis {
                        label.push_str(&format!(" @n={num_nodes}"));
                    }
                    cells.push(ScenarioCell {
                        label,
                        protocol: protocol.clone(),
                        num_nodes,
                        relay: relay.clone(),
                    });
                }
            }
        }
        cells
    }

    /// The [`ExperimentConfig`] one cell runs with (workload overrides —
    /// e.g. the churn-burst model — included).
    pub fn cell_config(&self, cell: &ScenarioCell) -> ExperimentConfig {
        let mut net = self.net.clone();
        net.num_nodes = cell.num_nodes;
        if let Workload::ChurnBurst {
            median_session_ms,
            session_sigma,
            mean_offline_ms,
        } = self.workload
        {
            net.churn = ChurnModel {
                median_session_ms,
                session_sigma,
                mean_offline_ms,
            };
        }
        ExperimentConfig {
            net,
            protocol: cell.protocol.clone(),
            relay: cell.relay.clone(),
            warmup_ms: self.warmup_ms,
            window_ms: self.window_ms,
            runs: self.runs,
            seed: self.seed,
        }
    }

    /// Checks that `stop` is internally valid and compatible with the
    /// workload: only streaming campaign workloads can stop adaptively.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate_stop_rule(&self, stop: &StopRule) -> Result<(), String> {
        stop.validate()?;
        if stop.is_adaptive()
            && !matches!(
                self.workload,
                Workload::TxFlood | Workload::ChurnBurst { .. } | Workload::OverheadProbe
            )
        {
            return Err(format!(
                "adaptive stop rule ({}) requires a streaming campaign workload \
                 (tx-flood, churn-burst or overhead-probe), not {}",
                stop.label(),
                self.workload.kind()
            ));
        }
        Ok(())
    }

    /// Opens a streaming [`ScenarioSession`] over this scenario: attach
    /// observers, pick a [`StopRule`], then
    /// [`block`](ScenarioSession::block) for the outcome.
    pub fn session(&self) -> ScenarioSession<'_> {
        ScenarioSession::new(self)
    }

    /// Runs the scenario against the built-in protocol set — a thin
    /// wrapper over [`session`](Self::session) with the scenario's
    /// declared stop rule (default [`StopRule::FixedRuns`], which is
    /// byte-identical to the batch reference [`run_batch`](Self::run_batch)).
    ///
    /// # Errors
    ///
    /// Propagates validation and configuration errors.
    pub fn run(&self) -> Result<ScenarioOutcome, String> {
        self.session().block()
    }

    /// Runs the scenario with protocols resolved against `registry` —
    /// custom registered policies run anywhere a built-in does.
    ///
    /// # Errors
    ///
    /// Propagates validation and configuration errors.
    pub fn run_in(&self, registry: &ProtocolRegistry) -> Result<ScenarioOutcome, String> {
        self.session().block_in(registry)
    }

    /// Reference batch implementation against the built-in protocol set:
    /// every cell consumes its whole `runs` budget, no events stream, and
    /// any declared `stop` rule is ignored. This is to [`run`](Self::run)
    /// what `ExperimentConfig::run_serial` is to `run` — the determinism
    /// baseline a `FixedRuns` session must reproduce byte-for-byte.
    ///
    /// # Errors
    ///
    /// Propagates validation and configuration errors.
    pub fn run_batch(&self) -> Result<ScenarioOutcome, String> {
        self.run_batch_in(&ProtocolRegistry::builtins())
    }

    /// [`run_batch`](Self::run_batch) with protocols resolved against
    /// `registry`.
    ///
    /// # Errors
    ///
    /// Propagates validation and configuration errors.
    pub fn run_batch_in(&self, registry: &ProtocolRegistry) -> Result<ScenarioOutcome, String> {
        self.validate_in(registry)?;
        let mut cells = Vec::new();
        for cell in self.cells() {
            // A cell that fails at run time does not abort the sweep: the
            // error is recorded in its outcome and surfaced by the
            // renderers, so one bad cell cannot silently NaN a whole table.
            let report = self
                .run_cell_batch(registry, &cell, None)
                .unwrap_or_else(|error| CellReport::Failed { error });
            cells.push(CellOutcome::new(
                cell.label,
                cell.protocol.to_string(),
                cell.num_nodes,
                report,
            ));
        }
        Ok(ScenarioOutcome::new(
            self.name.clone(),
            self.workload.clone(),
            cells,
        ))
    }

    /// Runs one expanded sweep cell to its full budget (the non-streaming
    /// path; sessions use it for single-shot and paired workloads).
    pub(crate) fn run_cell_batch(
        &self,
        registry: &ProtocolRegistry,
        cell: &ScenarioCell,
        threads: Option<usize>,
    ) -> Result<CellReport, String> {
        // Campaign-shaped workloads honour an explicit worker-thread count
        // (output is thread-count invariant either way); the single-shot
        // experiments (mining, eclipse, partition) are one simulation and
        // have no pool to size.
        let campaign_threads =
            threads.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let cfg = self.cell_config(cell);
        Ok(match &self.workload {
            Workload::TxFlood | Workload::ChurnBurst { .. } => CellReport::Campaign {
                campaign: cfg.run_in_with_threads(registry, campaign_threads)?,
            },
            Workload::OverheadProbe => CellReport::Overhead {
                report: OverheadReport::from_campaign(
                    &cfg.run_in_with_threads(registry, campaign_threads)?,
                ),
            },
            // `runs: 0` keeps the legacy single-shot experiment (mine
            // once over the warmup+window); `runs >= 1` replicates the
            // mining window off one warmed snapshot, each run reseeded
            // from `(seed, run_index)` — the shape that shards by run
            // range.
            Workload::Mining {
                block_interval_ms,
                duration_ms,
            } => CellReport::Forks {
                report: if self.runs == 0 {
                    fork_experiment_in(
                        registry,
                        &cfg,
                        cell.protocol.clone(),
                        *block_interval_ms,
                        *duration_ms,
                    )?
                } else {
                    mining_campaign_in(registry, &cfg, *block_interval_ms, *duration_ms, self.runs)?
                },
            },
            Workload::Eclipse {
                adversary_fraction,
                victims,
            } => CellReport::Eclipse {
                report: eclipse_exposure_in(
                    registry,
                    &cfg,
                    cell.protocol.clone(),
                    *adversary_fraction,
                    *victims,
                )?,
            },
            Workload::Partition => CellReport::Partition {
                report: partition_resilience_in(registry, &cfg, cell.protocol.clone())?,
            },
            Workload::Adversarial {
                strategy,
                attackers,
            } => CellReport::Adversary {
                report: adversarial_campaign_in_with_threads(
                    registry,
                    &cfg,
                    strategy,
                    *attackers,
                    campaign_threads,
                )?,
            },
        })
    }
}

/// One cell's result inside a [`ScenarioOutcome`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellReport {
    /// A measuring-node campaign (tx-flood and churn-burst workloads).
    Campaign {
        /// The campaign.
        campaign: CampaignResult,
    },
    /// The overhead budget of a campaign (overhead-probe workload).
    Overhead {
        /// The per-node budget.
        report: OverheadReport,
    },
    /// Proof-of-work fork statistics (mining workload).
    Forks {
        /// The fork report.
        report: ForkReport,
    },
    /// Eclipse-exposure statistics.
    Eclipse {
        /// The eclipse report.
        report: EclipseReport,
    },
    /// Partition-resilience statistics.
    Partition {
        /// The partition report.
        report: PartitionReport,
    },
    /// A behavioural-adversary campaign next to its clean baseline.
    Adversary {
        /// The adversary report.
        report: AdversaryReport,
    },
    /// The cell failed at run time; the error is preserved so renderers can
    /// surface it instead of NaN-padding a row.
    Failed {
        /// The run-time error.
        error: String,
    },
}

/// Lazily-computed pooled `Δt(m,n)` statistics, excluded from
/// serialization and equality. Streaming sessions pre-populate it from
/// their folded accumulators, so the accessors never re-collect; batch
/// and deserialized outcomes fill it on first use.
#[derive(Debug, Clone, Default)]
struct StatsCache {
    summary: OnceLock<Option<Summary>>,
    ecdf: OnceLock<Option<Ecdf>>,
}

/// One sweep cell's labelled outcome.
///
/// The pooled-statistics accessors ([`delta_summary`](Self::delta_summary),
/// [`delta_ecdf`](Self::delta_ecdf)) are cached after first use. An
/// outcome is a result record, not a builder — if you mutate `report`
/// after calling an accessor, build a fresh outcome with
/// [`CellOutcome::new`] instead of reusing the stale one.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Cell label (protocol label, plus `@n=…` on a size sweep).
    pub label: String,
    /// The protocol spec the cell ran.
    pub protocol: String,
    /// Network size the cell ran at.
    pub num_nodes: usize,
    /// The workload-specific report.
    pub report: CellReport,
    /// Cached pooled statistics (not serialized, not compared).
    cache: StatsCache,
}

impl PartialEq for CellOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label
            && self.protocol == other.protocol
            && self.num_nodes == other.num_nodes
            && self.report == other.report
    }
}

impl Serialize for CellOutcome {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("label".to_string(), self.label.to_value()),
            ("protocol".to_string(), self.protocol.to_value()),
            ("num_nodes".to_string(), self.num_nodes.to_value()),
            ("report".to_string(), self.report.to_value()),
        ])
    }
}

impl Deserialize for CellOutcome {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for CellOutcome"))?;
        Ok(CellOutcome::new(
            Deserialize::from_value(serde::map_get(m, "label"))?,
            Deserialize::from_value(serde::map_get(m, "protocol"))?,
            Deserialize::from_value(serde::map_get(m, "num_nodes"))?,
            Deserialize::from_value(serde::map_get(m, "report"))?,
        ))
    }
}

impl CellOutcome {
    /// Builds a cell outcome with an empty stats cache.
    pub fn new(label: String, protocol: String, num_nodes: usize, report: CellReport) -> Self {
        CellOutcome {
            label,
            protocol,
            num_nodes,
            report,
            cache: StatsCache::default(),
        }
    }

    /// Builds a cell outcome whose pooled summary was already folded by a
    /// streaming session (same sample order as the batch recompute, so
    /// the cached value is bit-identical to a lazy one). Only seeded when
    /// the report actually carries a campaign; the ECDF stays lazy — its
    /// one-time sort is bounded by the cache anyway, and pre-building it
    /// would hold a second copy of every sample alongside the campaign.
    pub(crate) fn with_delta_cache(
        label: String,
        protocol: String,
        num_nodes: usize,
        report: CellReport,
        summary: Summary,
    ) -> Self {
        let cell = CellOutcome::new(label, protocol, num_nodes, report);
        if cell.campaign().is_some() {
            let _ = cell.cache.summary.set(Some(summary));
        }
        cell
    }
    /// The underlying campaign, when the workload produced one (for
    /// adversarial cells: the *attacked* campaign).
    pub fn campaign(&self) -> Option<&CampaignResult> {
        match &self.report {
            CellReport::Campaign { campaign } => Some(campaign),
            CellReport::Adversary { report } => Some(&report.campaign),
            _ => None,
        }
    }

    /// The run-time error of a failed cell.
    pub fn error(&self) -> Option<&str> {
        match &self.report {
            CellReport::Failed { error } => Some(error),
            _ => None,
        }
    }

    /// Streaming summary of this cell's pooled `Δt(m,n)` samples.
    /// Computed once (or folded live by the session) and cached.
    pub fn delta_summary(&self) -> Option<Summary> {
        *self
            .cache
            .summary
            .get_or_init(|| self.campaign().map(CampaignResult::delta_summary))
    }

    /// ECDF of this cell's pooled `Δt(m,n)` samples (`None` when the
    /// workload has none, or no run produced a delta). Computed once (or
    /// folded live by the session) and cached.
    pub fn delta_ecdf(&self) -> Option<Ecdf> {
        self.cache
            .ecdf
            .get_or_init(|| self.campaign().and_then(|c| c.delta_ecdf().ok()))
            .clone()
    }
}

/// The unified result of a scenario: what used to be four divergent return
/// types (campaign results, fork stats, attack stats, overhead tables)
/// behind one serializable report.
///
/// Like [`CellOutcome`], the pooled-statistics accessors are cached
/// after first use; treat an outcome as immutable once read, and build a
/// fresh one ([`ScenarioOutcome::new`]) rather than mutating `cells`
/// afterwards.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario's name.
    pub scenario: String,
    /// The workload that ran (echoed for self-description).
    pub workload: Workload,
    /// Per-cell outcomes, in sweep order.
    pub cells: Vec<CellOutcome>,
    /// Cached pooled statistics (not serialized, not compared).
    cache: StatsCache,
}

impl PartialEq for ScenarioOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.scenario == other.scenario
            && self.workload == other.workload
            && self.cells == other.cells
    }
}

impl Serialize for ScenarioOutcome {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("scenario".to_string(), self.scenario.to_value()),
            ("workload".to_string(), self.workload.to_value()),
            ("cells".to_string(), self.cells.to_value()),
        ])
    }
}

impl Deserialize for ScenarioOutcome {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for ScenarioOutcome"))?;
        Ok(ScenarioOutcome::new(
            Deserialize::from_value(serde::map_get(m, "scenario"))?,
            Deserialize::from_value(serde::map_get(m, "workload"))?,
            Deserialize::from_value(serde::map_get(m, "cells"))?,
        ))
    }
}

impl ScenarioOutcome {
    /// Builds an outcome with an empty stats cache.
    pub fn new(scenario: String, workload: Workload, cells: Vec<CellOutcome>) -> Self {
        ScenarioOutcome {
            scenario,
            workload,
            cells,
            cache: StatsCache::default(),
        }
    }
    /// Serializes the outcome as indented JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("outcome serializes")
    }

    /// Parses an outcome from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid outcome: {e}"))
    }

    /// Summary of the `Δt(m,n)` samples pooled across every campaign cell.
    /// Computed once and cached.
    pub fn delta_summary(&self) -> Summary {
        self.cache
            .summary
            .get_or_init(|| {
                Some(
                    self.cells
                        .iter()
                        .filter_map(CellOutcome::campaign)
                        .flat_map(CampaignResult::deltas_ms)
                        .collect(),
                )
            })
            .unwrap_or_default()
    }

    /// ECDF of the pooled `Δt(m,n)` samples across every campaign cell
    /// (`None` when no cell carries deltas). Computed once and cached.
    pub fn delta_ecdf(&self) -> Option<Ecdf> {
        self.cache
            .ecdf
            .get_or_init(|| {
                Ecdf::from_samples(
                    self.cells
                        .iter()
                        .filter_map(CellOutcome::campaign)
                        .flat_map(CampaignResult::deltas_ms),
                )
                .ok()
            })
            .clone()
    }

    /// Run-time problems per cell, in sweep order: hard cell failures
    /// ([`CellReport::Failed`]) and campaign cells that produced no
    /// `Δt(m,n)` samples. Renderers print these instead of NaN-padding
    /// rows.
    pub fn cell_errors(&self) -> Vec<(String, String)> {
        self.cells
            .iter()
            .filter_map(|cell| match &cell.report {
                CellReport::Failed { error } => Some((cell.label.clone(), error.clone())),
                CellReport::Campaign { campaign } if campaign.delta_ecdf().is_err() => Some((
                    cell.label.clone(),
                    "campaign produced no Δt samples".to_string(),
                )),
                CellReport::Adversary { report } if !report.slowdown.is_finite() => Some((
                    cell.label.clone(),
                    "adversarial campaign recorded no arrival samples".to_string(),
                )),
                _ => None,
            })
            .collect()
    }

    /// The workload family's summary table — the same columns the old
    /// per-figure drivers printed. Failed cells contribute no row; their
    /// errors are in [`cell_errors`](Self::cell_errors) and appended by
    /// [`render`](Self::render).
    pub fn table(&self) -> StatTable {
        let title = format!("{} — {}", self.scenario, self.workload.kind());
        match &self.workload {
            Workload::TxFlood | Workload::ChurnBurst { .. } => {
                let mut table = StatTable::new(
                    format!("{title} — Δt(m,n) in ms"),
                    &[
                        "mean",
                        "variance",
                        "median",
                        "p90",
                        "max",
                        "samples",
                        "coverage",
                        "clusters",
                        "max_cluster",
                    ],
                );
                for cell in &self.cells {
                    let Some(campaign) = cell.campaign() else {
                        continue;
                    };
                    // Sample-free campaigns are reported via cell_errors,
                    // not as a NaN row.
                    let Ok(e) = campaign.delta_ecdf() else {
                        continue;
                    };
                    let mut row = vec![
                        e.mean(),
                        e.sample_variance(),
                        e.median(),
                        e.quantile(0.9),
                        e.max(),
                        e.len() as f64,
                    ];
                    row.push(campaign.mean_coverage());
                    row.push(campaign.cluster_sizes.len() as f64);
                    row.push(campaign.cluster_sizes.first().copied().unwrap_or(0) as f64);
                    table.push_row(cell.label.clone(), row);
                }
                table
            }
            Workload::OverheadProbe => {
                let mut table = StatTable::new(
                    format!("{title} — messages per node over the campaign"),
                    &OVERHEAD_COLUMNS,
                );
                for cell in &self.cells {
                    if let CellReport::Overhead { report } = &cell.report {
                        table.push_row(cell.label.clone(), report.row());
                    }
                }
                table
            }
            Workload::Mining { .. } => {
                // When any cell ran an instrumented relay strategy, the
                // table pairs the fork statistics with propagation delay
                // and wire-level waste — the delay-vs-waste trade-off the
                // relay sweep exists to expose.
                let relay_columns = self.cells.iter().any(|cell| {
                    matches!(&cell.report, CellReport::Forks { report } if report.relay.is_some())
                });
                let columns: &[&str] = if relay_columns {
                    &[
                        "mined",
                        "stale",
                        "stale_rate",
                        "tip_agreement",
                        "delay_ms",
                        "wire_mb",
                        "waste",
                    ]
                } else {
                    &["mined", "stale", "stale_rate", "tip_agreement"]
                };
                let mut table = StatTable::new(format!("{title} — proof-of-work forks"), columns);
                for cell in &self.cells {
                    if let CellReport::Forks { report } = &cell.report {
                        let mut row = vec![
                            report.mined as f64,
                            report.stale as f64,
                            report.stale_rate,
                            report.tip_agreement,
                        ];
                        if relay_columns {
                            match &report.relay {
                                Some(ext) => row.extend([
                                    ext.block_delay_ms,
                                    ext.bandwidth.bytes_on_wire as f64 / 1e6,
                                    ext.bandwidth.waste_ratio,
                                ]),
                                None => row.extend([0.0, 0.0, 0.0]),
                            }
                        }
                        table.push_row(cell.label.clone(), row);
                    }
                }
                table
            }
            Workload::Eclipse { .. } => {
                let mut table = StatTable::new(
                    format!("{title} — adversary concentrated near the victim"),
                    &["adv_fraction", "mean_bad_share", "max_bad_share", "victims"],
                );
                for cell in &self.cells {
                    if let CellReport::Eclipse { report } = &cell.report {
                        table.push_row(
                            cell.label.clone(),
                            vec![
                                report.adversary_fraction,
                                report.mean_malicious_peer_share,
                                report.max_malicious_peer_share,
                                report.victims as f64,
                            ],
                        );
                    }
                }
                table
            }
            Workload::Partition => {
                let mut table = StatTable::new(
                    format!("{title} — cut all inter-cluster links"),
                    &["cut_edges", "total_edges", "reachable_after"],
                );
                for cell in &self.cells {
                    if let CellReport::Partition { report } = &cell.report {
                        table.push_row(
                            cell.label.clone(),
                            vec![
                                report.cut_edges as f64,
                                report.total_edges as f64,
                                report.reachable_after_cut,
                            ],
                        );
                    }
                }
                table
            }
            Workload::Adversarial { strategy, .. } => {
                let mut table = StatTable::new(
                    format!(
                        "{title} — {} attackers in the loop, vs clean baseline",
                        strategy.label()
                    ),
                    &ADVERSARY_COLUMNS,
                );
                for cell in &self.cells {
                    if let CellReport::Adversary { report } = &cell.report {
                        // Arrival-free cells go through cell_errors, not as
                        // a NaN row.
                        if report.slowdown.is_finite() {
                            table.push_row(cell.label.clone(), report.row());
                        }
                    }
                }
                table
            }
        }
    }

    /// CDF figure of `Δt(m,n)` per campaign cell (`None` for workloads
    /// without delay samples).
    pub fn figure(&self) -> Option<Figure> {
        let mut figure = Figure::new(self.scenario.clone(), "delta_t_ms", "cdf");
        for cell in &self.cells {
            if let Some(ecdf) = cell.delta_ecdf() {
                figure.push_series(Series::new(cell.label.clone(), ecdf.curve(CURVE_POINTS)));
            }
        }
        if figure.series.is_empty() {
            None
        } else {
            Some(figure)
        }
    }

    /// Renders the outcome as plain text: the CDF figure (when the
    /// workload yields delay samples), the summary table, and one line per
    /// failed/sample-free cell.
    pub fn render(&self) -> String {
        let mut out = match self.figure() {
            Some(figure) => format!("{}\n{}", figure.render_columns(), self.table().render()),
            None => self.table().render(),
        };
        for (label, error) in self.cell_errors() {
            out.push_str(&format!("! cell {label}: {error}\n"));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Built-in scenarios: the paper's figures and extensions as data.
// ---------------------------------------------------------------------

/// The three protocols of the paper's Fig. 3 comparison.
fn paper_protocols() -> Vec<ProtocolSpec> {
    vec![
        ProtocolSpec::from(Protocol::Bitcoin),
        ProtocolSpec::from(Protocol::Lbc),
        ProtocolSpec::from(Protocol::bcbpt_paper()),
    ]
}

/// The demo-scale environment the old figure binaries defaulted to.
fn demo_environment(num_nodes: usize, runs: usize) -> Scenario {
    let mut net = NetConfig::test_scale();
    net.num_nodes = num_nodes;
    Scenario {
        name: String::new(),
        net,
        protocol: ProtocolSpec::from(Protocol::Bitcoin),
        relay: None,
        workload: Workload::TxFlood,
        sweep: None,
        stop: None,
        runs,
        warmup_ms: 5_000.0,
        window_ms: 20_000.0,
        seed: 0xBCB9,
    }
}

impl Scenario {
    /// Names of the built-in scenarios, one per paper figure or extension
    /// experiment (the set `scenario list`/`scenario export` covers).
    pub fn builtin_names() -> &'static [&'static str] {
        &[
            "fig3",
            "fig4",
            "sweep",
            "forks",
            "eclipse",
            "partition",
            "overhead",
            "churn",
            "pingspoof",
            "withhold",
            "relay",
        ]
    }

    /// One-line description of a built-in scenario.
    pub fn builtin_description(name: &str) -> Option<&'static str> {
        Some(match name {
            "fig3" => "Fig. 3: Δt(m,n) distribution, Bitcoin vs LBC vs BCBPT (dt=25ms)",
            "fig4" => "Fig. 4: Δt(m,n) distribution, BCBPT at dt = 30/50/100 ms",
            "sweep" => "Extension: fine-grained BCBPT threshold sweep",
            "forks" => "Extension: stale-block rate under proof-of-work per protocol",
            "eclipse" => "§V.C future work: eclipse exposure per protocol",
            "partition" => "§V.C future work: partition resilience per protocol",
            "overhead" => "§IV.A future work: probe/control/relay budget per protocol",
            "churn" => "Extension: tx-flood campaign under burst churn",
            "pingspoof" => "§V.C behavioural: attackers forge RTT probes to infiltrate clusters",
            "withhold" => "§V.C behavioural: attackers blackhole half the relays they owe",
            "relay" => "Extension: propagation delay vs bandwidth waste per relay strategy",
            _ => return None,
        })
    }

    /// The built-in scenario called `name` at the demo scale the deleted
    /// per-figure binaries ran by default (seeded identically, so results
    /// reproduce byte-for-byte).
    pub fn builtin(name: &str) -> Option<Scenario> {
        let scenario = match name {
            "fig3" => {
                demo_environment(400, 40).with_sweep(Sweep::over_protocols(paper_protocols()))
            }
            "fig4" => demo_environment(400, 40).with_sweep(Sweep::over_protocols([
                Protocol::Bcbpt { threshold_ms: 30.0 },
                Protocol::Bcbpt { threshold_ms: 50.0 },
                Protocol::Bcbpt {
                    threshold_ms: 100.0,
                },
            ])),
            // The sweep declares an adaptive budget: each threshold cell
            // stops as soon as its Δt mean is known to ±5 % (95 % CI)
            // instead of always burning the full 25 runs.
            "sweep" => demo_environment(400, 25)
                .with_sweep(Sweep::over_thresholds_ms([
                    10.0, 25.0, 30.0, 50.0, 75.0, 100.0, 150.0, 200.0,
                ]))
                .with_stop(StopRule::CiHalfWidth {
                    level: 0.95,
                    rel_width: 0.05,
                    min_runs: 8,
                }),
            "forks" => {
                // Two replicated 150 s mining windows per cell (same
                // total mining time as the old single 300 s shot, now a
                // run-range-shardable campaign with per-run replicates).
                let mut s = demo_environment(400, 2);
                // Compact-block relay keeps block propagation latency-bound
                // (see EXPERIMENTS.md): with full 200 KB blocks the
                // protocols tie on serialization cost.
                s.net.block_size_bytes = 20_000;
                s.workload = Workload::Mining {
                    block_interval_ms: 1_000.0,
                    duration_ms: 150_000.0,
                };
                s.with_sweep(Sweep::over_protocols(paper_protocols()))
            }
            "eclipse" => {
                let mut s = demo_environment(300, 0);
                s.workload = Workload::Eclipse {
                    adversary_fraction: 0.10,
                    victims: 10,
                };
                s.with_sweep(Sweep::over_protocols(paper_protocols()))
            }
            "partition" => {
                let mut s = demo_environment(300, 0);
                s.workload = Workload::Partition;
                s.with_sweep(Sweep::over_protocols(paper_protocols()))
            }
            "overhead" => {
                let mut s = demo_environment(300, 10);
                s.workload = Workload::OverheadProbe;
                s.with_sweep(Sweep::over_protocols(paper_protocols()))
            }
            "churn" => {
                let mut s = demo_environment(150, 8);
                s.warmup_ms = 3_000.0;
                s.workload = Workload::ChurnBurst {
                    median_session_ms: 60_000.0,
                    session_sigma: 1.0,
                    mean_offline_ms: 20_000.0,
                };
                s.with_sweep(Sweep::over_protocols(paper_protocols()))
            }
            "pingspoof" => {
                // 10% of the population forges proximity from before
                // cluster formation; the table answers the paper's §V.C
                // question per protocol: how infiltrable, at what cost.
                let mut s = demo_environment(300, 10);
                s.workload = Workload::Adversarial {
                    strategy: AdversaryStrategy::PingSpoof { spoof_factor: 0.05 },
                    attackers: 30,
                };
                s.with_sweep(Sweep::over_protocols(paper_protocols()))
            }
            "withhold" => {
                let mut s = demo_environment(300, 10);
                s.workload = Workload::Adversarial {
                    strategy: AdversaryStrategy::Withhold { drop_fraction: 0.5 },
                    attackers: 30,
                };
                s.with_sweep(Sweep::over_protocols(paper_protocols()))
            }
            "relay" => {
                // The delay-vs-waste grid: both clustering regimes under
                // every relay family. Same mining environment as "forks"
                // so the delay columns compare against a known baseline.
                let mut s = demo_environment(400, 2);
                s.net.block_size_bytes = 20_000;
                s.workload = Workload::Mining {
                    block_interval_ms: 1_000.0,
                    duration_ms: 150_000.0,
                };
                s.with_sweep(Sweep {
                    protocols: vec![
                        ProtocolSpec::from(Protocol::Bitcoin),
                        ProtocolSpec::from(Protocol::bcbpt_paper()),
                    ],
                    thresholds_ms: vec![],
                    num_nodes: vec![],
                    relays: vec![
                        RelaySpec::new("full"),
                        RelaySpec::new("compact"),
                        RelaySpec::new("rlnc(chunks=16)"),
                    ],
                })
            }
            _ => return None,
        };
        Some(Scenario {
            name: name.to_string(),
            ..scenario
        })
    }

    /// A CI-scale copy: same shape, shrunk population/runs/windows so one
    /// cell finishes in about a second in release builds (`scenario quick`).
    #[must_use]
    pub fn quick_scaled(&self) -> Self {
        let mut s = self.clone();
        s.net.num_nodes = s.net.num_nodes.min(120);
        s.runs = s.runs.min(4);
        s.warmup_ms = s.warmup_ms.min(2_000.0);
        s.window_ms = s.window_ms.min(15_000.0);
        if let Workload::Mining { duration_ms, .. } = &mut s.workload {
            // Total quick mining time stays ~60 s of simulation per cell
            // no matter how many replicated runs the scenario declares.
            *duration_ms = duration_ms.min(60_000.0 / s.runs.max(1) as f64);
        }
        if let Workload::Adversarial { attackers, .. } = &mut s.workload {
            // Keep the attacker fraction meaningful at the shrunk scale.
            *attackers = (*attackers).min(s.net.num_nodes / 10).max(1);
        }
        if let Some(sweep) = &mut s.sweep {
            sweep.thresholds_ms.truncate(4);
            sweep.num_nodes = sweep.num_nodes.iter().map(|&n| n.min(120)).collect();
            // Clamping can alias distinct sizes; drop every duplicate (not
            // just adjacent ones) so no two cells are byte-identical.
            let mut seen = std::collections::BTreeSet::new();
            sweep.num_nodes.retain(|&n| seen.insert(n));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(workload: Workload) -> Scenario {
        let mut base = ExperimentConfig::quick(Protocol::Bitcoin);
        base.net.num_nodes = 60;
        base.warmup_ms = 1_000.0;
        base.window_ms = 15_000.0;
        base.runs = 3;
        Scenario::from_experiment("tiny", &base, workload)
    }

    fn every_workload() -> Vec<Workload> {
        vec![
            Workload::TxFlood,
            Workload::Mining {
                block_interval_ms: 800.0,
                duration_ms: 30_000.0,
            },
            Workload::Partition,
            Workload::Eclipse {
                adversary_fraction: 0.1,
                victims: 5,
            },
            Workload::OverheadProbe,
            Workload::ChurnBurst {
                median_session_ms: 30_000.0,
                session_sigma: 1.1,
                mean_offline_ms: 10_000.0,
            },
            Workload::Adversarial {
                strategy: AdversaryStrategy::PingSpoof { spoof_factor: 0.05 },
                attackers: 6,
            },
            Workload::Adversarial {
                strategy: AdversaryStrategy::DelayRelay { delay_ms: 250.0 },
                attackers: 6,
            },
            Workload::Adversarial {
                strategy: AdversaryStrategy::Withhold { drop_fraction: 0.5 },
                attackers: 6,
            },
        ]
    }

    #[test]
    fn workload_serde_round_trips_every_variant() {
        for workload in every_workload() {
            let json = serde_json::to_string(&workload).unwrap();
            let back: Workload = serde_json::from_str(&json).unwrap();
            assert_eq!(back, workload, "{json}");
        }
    }

    #[test]
    fn scenario_serde_round_trips_every_workload() {
        for workload in every_workload() {
            let scenario = tiny(workload).with_sweep(Sweep::over_protocols(paper_protocols()));
            let back = Scenario::from_json(&scenario.to_json()).unwrap();
            assert_eq!(back, scenario);
        }
    }

    #[test]
    fn builtins_parse_validate_and_round_trip() {
        for name in Scenario::builtin_names() {
            let scenario = Scenario::builtin(name).unwrap();
            assert_eq!(&scenario.name, name);
            scenario
                .validate()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(Scenario::builtin_description(name).is_some());
            let back = Scenario::from_json(&scenario.to_json()).unwrap();
            assert_eq!(back, scenario, "{name} survives a JSON round trip");
            let quick = scenario.quick_scaled();
            quick
                .validate()
                .unwrap_or_else(|e| panic!("{name} quick: {e}"));
            assert!(quick.net.num_nodes <= 120);
        }
        assert!(Scenario::builtin("nope").is_none());
        assert!(Scenario::builtin_description("nope").is_none());
    }

    #[test]
    fn sweep_expansion_covers_the_axes() {
        let base = tiny(Workload::TxFlood);
        assert_eq!(base.cells().len(), 1, "no sweep = one cell");
        assert_eq!(base.cells()[0].label, "bitcoin");

        let protos = base
            .clone()
            .with_sweep(Sweep::over_protocols(paper_protocols()));
        let labels: Vec<String> = protos.cells().into_iter().map(|c| c.label).collect();
        assert_eq!(labels, vec!["bitcoin", "lbc", "bcbpt(dt=25ms)"]);

        let thresholds = base
            .clone()
            .with_sweep(Sweep::over_thresholds_ms([20.0, 40.0]));
        let labels: Vec<String> = thresholds.cells().into_iter().map(|c| c.label).collect();
        assert_eq!(labels, vec!["bcbpt(dt=20ms)", "bcbpt(dt=40ms)"]);

        let sizes = base.with_sweep(Sweep {
            protocols: vec![ProtocolSpec::from(Protocol::Bitcoin)],
            thresholds_ms: vec![],
            num_nodes: vec![40, 60],
            relays: vec![],
        });
        let cells = sizes.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].label, "bitcoin @n=40");
        assert_eq!(cells[0].num_nodes, 40);
        assert_eq!(cells[1].num_nodes, 60);
    }

    #[test]
    fn validation_rejects_inconsistent_scenarios() {
        let mut nameless = tiny(Workload::TxFlood);
        nameless.name = " ".to_string();
        assert!(nameless.validate().is_err());

        let mut no_runs = tiny(Workload::TxFlood);
        no_runs.runs = 0;
        assert!(no_runs.validate().unwrap_err().contains("runs"));

        let conflicting = tiny(Workload::TxFlood).with_sweep(Sweep {
            protocols: paper_protocols(),
            thresholds_ms: vec![25.0],
            num_nodes: vec![],
            relays: vec![],
        });
        assert!(conflicting.validate().unwrap_err().contains("sweep"));

        let mut unknown = tiny(Workload::TxFlood);
        unknown.protocol = ProtocolSpec::new("martian");
        assert!(unknown.validate().unwrap_err().contains("martian"));

        let bad_workload = tiny(Workload::Eclipse {
            adversary_fraction: 1.5,
            victims: 3,
        });
        assert!(bad_workload
            .validate()
            .unwrap_err()
            .contains("adversary_fraction"));

        let mining_needs_no_runs = Scenario {
            runs: 0,
            ..tiny(Workload::Mining {
                block_interval_ms: 500.0,
                duration_ms: 10_000.0,
            })
        };
        mining_needs_no_runs.validate().unwrap();
    }

    #[test]
    fn validation_rejects_degenerate_adversarial_parameters() {
        let zero_attackers = tiny(Workload::Adversarial {
            strategy: AdversaryStrategy::PingSpoof { spoof_factor: 0.05 },
            attackers: 0,
        });
        assert!(zero_attackers.validate().unwrap_err().contains("attackers"));

        for (strategy, needle) in [
            (
                AdversaryStrategy::PingSpoof { spoof_factor: 0.0 },
                "spoof_factor",
            ),
            (
                AdversaryStrategy::PingSpoof {
                    spoof_factor: f64::NAN,
                },
                "spoof_factor",
            ),
            (AdversaryStrategy::DelayRelay { delay_ms: -5.0 }, "delay_ms"),
            (
                AdversaryStrategy::Withhold { drop_fraction: 1.5 },
                "drop_fraction",
            ),
        ] {
            let bad = tiny(Workload::Adversarial {
                strategy,
                attackers: 5,
            });
            assert!(
                bad.validate().unwrap_err().contains(needle),
                "{strategy:?} must be rejected via {needle}"
            );
        }

        // Population-relative checks are per cell.
        let too_many = tiny(Workload::Adversarial {
            strategy: AdversaryStrategy::Withhold { drop_fraction: 0.5 },
            attackers: 60,
        });
        assert!(too_many.validate().unwrap_err().contains("fewer than"));
        let too_many_victims = tiny(Workload::Eclipse {
            adversary_fraction: 0.1,
            victims: 61,
        });
        assert!(too_many_victims.validate().unwrap_err().contains("victims"));
        let nan_fraction = tiny(Workload::Eclipse {
            adversary_fraction: f64::NAN,
            victims: 3,
        });
        assert!(nan_fraction
            .validate()
            .unwrap_err()
            .contains("adversary_fraction"));
    }

    #[test]
    fn relay_field_and_relay_sweep_round_trip() {
        // Base-level relay.
        let mut pinned = tiny(Workload::TxFlood);
        pinned.relay = Some(RelaySpec::new("compact"));
        let back = Scenario::from_json(&pinned.to_json()).unwrap();
        assert_eq!(back, pinned);
        assert!(pinned.to_json().contains("\"relay\""));

        // Relay sweep axis.
        let swept = tiny(Workload::Mining {
            block_interval_ms: 800.0,
            duration_ms: 30_000.0,
        })
        .with_sweep(Sweep::over_relays(["full", "rlnc(chunks=8)"]));
        let back = Scenario::from_json(&swept.to_json()).unwrap();
        assert_eq!(back, swept);
        let labels: Vec<String> = swept.cells().into_iter().map(|c| c.label).collect();
        assert_eq!(labels, vec!["bitcoin × full", "bitcoin × rlnc(chunks=8)"]);

        // Legacy JSON predating the relay seam parses to the relay-free
        // form, and that form serializes without a relay key — so every
        // pre-relay scenario file and its digest stay byte-identical.
        let legacy = tiny(Workload::TxFlood);
        let json = legacy.to_json();
        assert!(!json.contains("\"relay\""), "{json}");
        assert!(!json.contains("\"relays\""), "{json}");
        let parsed = Scenario::from_json(&json).unwrap();
        assert_eq!(parsed.relay, None);
        assert_eq!(parsed, legacy);
    }

    #[test]
    fn validation_rejects_bad_relay_configurations() {
        let empty = tiny(Workload::TxFlood).with_sweep(Sweep::over_relays([""]));
        assert!(empty.validate().unwrap_err().contains("must not be empty"));

        let duplicated =
            tiny(Workload::TxFlood).with_sweep(Sweep::over_relays(["compact", "compact"]));
        assert!(duplicated.validate().unwrap_err().contains("appears twice"));

        let mut unknown = tiny(Workload::TxFlood);
        unknown.relay = Some(RelaySpec::new("carrier-pigeon"));
        let err = unknown.validate().unwrap_err();
        assert!(err.contains("unknown relay family"), "{err}");
        assert!(err.contains("carrier-pigeon"), "{err}");

        let bad_params = tiny(Workload::TxFlood).with_sweep(Sweep::over_relays(["rlnc(chunks=0)"]));
        assert!(bad_params.validate().is_err());

        // An adaptive stop rule composes with a relay sweep only on
        // streaming campaign workloads: Mining cells fold no run means.
        let adaptive = StopRule::CiHalfWidth {
            level: 0.95,
            rel_width: 0.1,
            min_runs: 2,
        };
        let mining = tiny(Workload::Mining {
            block_interval_ms: 800.0,
            duration_ms: 30_000.0,
        })
        .with_sweep(Sweep::over_relays(["full", "compact"]))
        .with_stop(adaptive);
        let err = mining.validate().unwrap_err();
        assert!(err.contains("adaptive stop rule"), "{err}");

        tiny(Workload::TxFlood)
            .with_sweep(Sweep::over_relays(["full", "compact"]))
            .with_stop(adaptive)
            .validate()
            .unwrap();
    }

    #[test]
    fn tx_flood_scenario_matches_direct_campaigns() {
        // The declarative path must reproduce the hand-wired path
        // byte-for-byte: same seed, same cells, same campaigns.
        let scenario = tiny(Workload::TxFlood).with_sweep(Sweep::over_protocols(paper_protocols()));
        let outcome = scenario.run().unwrap();
        assert_eq!(outcome.cells.len(), 3);
        let base = ExperimentConfig {
            net: scenario.net.clone(),
            protocol: scenario.protocol.clone(),
            relay: None,
            warmup_ms: scenario.warmup_ms,
            window_ms: scenario.window_ms,
            runs: scenario.runs,
            seed: scenario.seed,
        };
        for (cell, protocol) in outcome.cells.iter().zip(paper_protocols()) {
            let direct = base.with_protocol(protocol).run().unwrap();
            assert_eq!(cell.campaign(), Some(&direct), "{}", cell.label);
        }
        // Shared accessors agree with the campaign-level ones.
        let first = &outcome.cells[0];
        assert_eq!(
            first.delta_summary().unwrap().count(),
            first.campaign().unwrap().delta_summary().count()
        );
        assert!(outcome.delta_summary().count() > 0);
        assert!(outcome.delta_ecdf().is_some());
        let text = outcome.render();
        assert!(
            text.contains("bitcoin") && text.contains("bcbpt(dt=25ms)"),
            "{text}"
        );
    }

    #[test]
    fn mining_scenario_matches_direct_fork_experiment() {
        let mut scenario = tiny(Workload::Mining {
            block_interval_ms: 800.0,
            duration_ms: 30_000.0,
        });
        scenario.net.num_nodes = 80;
        scenario.runs = 0;
        let outcome = scenario.run().unwrap();
        let CellReport::Forks { report } = &outcome.cells[0].report else {
            panic!("mining produces fork reports");
        };
        let cfg = scenario.cell_config(&scenario.cells()[0]);
        let direct =
            crate::forks::fork_experiment(&cfg, scenario.protocol.clone(), 800.0, 30_000.0)
                .unwrap();
        assert_eq!(report, &direct);
        assert!(outcome.figure().is_none(), "no delay samples to plot");
        assert!(outcome.render().contains("stale_rate"));
    }

    #[test]
    fn replicated_mining_scenario_matches_direct_mining_campaign() {
        // `runs >= 1` switches the Mining cell to the replicated
        // campaign: reruns are byte-identical and match the direct call.
        let mut scenario = tiny(Workload::Mining {
            block_interval_ms: 800.0,
            duration_ms: 10_000.0,
        });
        scenario.net.num_nodes = 80;
        scenario.runs = 2;
        let outcome = scenario.run().unwrap();
        let CellReport::Forks { report } = &outcome.cells[0].report else {
            panic!("mining produces fork reports");
        };
        assert!(report.mined > 0, "two replicates must mine blocks");
        let cfg = scenario.cell_config(&scenario.cells()[0]);
        let direct = crate::forks::mining_campaign_in(
            &ProtocolRegistry::builtins(),
            &cfg,
            800.0,
            10_000.0,
            2,
        )
        .unwrap();
        assert_eq!(report, &direct);
        let again = scenario.run().unwrap();
        assert_eq!(outcome, again, "replicated mining must be deterministic");
    }

    #[test]
    fn attack_and_overhead_scenarios_produce_their_tables() {
        let mut partition = tiny(Workload::Partition);
        partition.net.num_nodes = 80;
        partition.runs = 0;
        let outcome = partition
            .clone()
            .with_sweep(Sweep::over_protocols([
                Protocol::Bitcoin,
                Protocol::bcbpt_paper(),
            ]))
            .run()
            .unwrap();
        assert_eq!(outcome.cells.len(), 2);
        assert!(outcome.table().render().contains("cut_edges"));

        let mut eclipse = partition;
        eclipse.workload = Workload::Eclipse {
            adversary_fraction: 0.1,
            victims: 5,
        };
        let outcome = eclipse.run().unwrap();
        assert!(outcome.table().render().contains("mean_bad_share"));

        let overhead = tiny(Workload::OverheadProbe);
        let outcome = overhead.run().unwrap();
        let CellReport::Overhead { report } = &outcome.cells[0].report else {
            panic!("overhead probe produces overhead reports");
        };
        assert!(report.relay_per_node > 0.0);
        assert!(outcome.table().render().contains("probe/node"));
    }

    #[test]
    fn churn_burst_overrides_the_churn_model() {
        let scenario = tiny(Workload::ChurnBurst {
            median_session_ms: 20_000.0,
            session_sigma: 1.2,
            mean_offline_ms: 8_000.0,
        });
        let cfg = scenario.cell_config(&scenario.cells()[0]);
        assert_eq!(cfg.net.churn.median_session_ms, 20_000.0);
        assert!(!cfg.net.churn.is_disabled());
        let outcome = scenario.run().unwrap();
        let campaign = outcome.cells[0].campaign().unwrap();
        assert!(!campaign.runs.is_empty());
        assert!(campaign.mean_coverage() > 0.5, "network must not collapse");
    }

    #[test]
    fn adversarial_scenario_runs_and_matches_direct_reports() {
        let mut scenario = tiny(Workload::Adversarial {
            strategy: AdversaryStrategy::Withhold { drop_fraction: 0.6 },
            attackers: 8,
        })
        .with_sweep(Sweep::over_protocols([
            Protocol::Bitcoin,
            Protocol::bcbpt_paper(),
        ]));
        scenario.runs = 2;
        let outcome = scenario.run().unwrap();
        assert_eq!(outcome.cells.len(), 2);
        for cell in &outcome.cells {
            let CellReport::Adversary { report } = &cell.report else {
                panic!("adversarial workload produces adversary reports");
            };
            assert_eq!(report.attackers, 8);
            assert!(report.withheld_messages > 0);
            assert!(cell.campaign().is_some(), "attacked campaign is exposed");
        }
        // The declarative path reproduces the direct runner byte-for-byte.
        let cfg = scenario.cell_config(&scenario.cells()[0]);
        let direct = crate::adversary::adversarial_campaign(
            &cfg,
            &AdversaryStrategy::Withhold { drop_fraction: 0.6 },
            8,
        )
        .unwrap();
        assert_eq!(
            outcome.cells[0].report,
            CellReport::Adversary { report: direct }
        );
        let text = outcome.render();
        assert!(text.contains("slowdown"), "{text}");
        assert!(text.contains("withhold(p=0.6)"), "{text}");
        assert!(outcome.figure().is_some(), "attacked Δt CDFs are plotted");
    }

    #[test]
    fn failed_cells_surface_errors_instead_of_nan() {
        // A registry whose factory succeeds while the scenario validates
        // and then breaks: the failing cell must be recorded, not abort the
        // sweep or NaN-pad the table.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let builds = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&builds);
        let mut registry = ProtocolRegistry::builtins();
        registry.register("flaky", move |_spec| {
            // validate_in builds each cell once (call 0); the run builds
            // again (call 1) and explodes.
            if counter.fetch_add(1, Ordering::SeqCst) == 0 {
                Ok(Box::new(bcbpt_net::RandomPolicy::new()))
            } else {
                Err("flaky exploded at run time".to_string())
            }
        });
        let mut scenario = tiny(Workload::TxFlood);
        scenario.runs = 2;
        scenario.protocol = ProtocolSpec::new("flaky");
        let outcome = scenario.run_in(&registry).unwrap();
        assert_eq!(outcome.cells.len(), 1);
        assert_eq!(outcome.cells[0].error(), Some("flaky exploded at run time"));
        let errors = outcome.cell_errors();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, "flaky");
        let text = outcome.render();
        assert!(
            text.contains("! cell flaky: flaky exploded at run time"),
            "{text}"
        );
        assert!(!text.contains("NaN"), "no NaN padding: {text}");
        assert!(outcome.table().is_empty(), "failed cells have no row");
        // The failed outcome still serde round-trips.
        let back = ScenarioOutcome::from_json(&outcome.to_json()).unwrap();
        assert_eq!(back, outcome);
    }

    #[test]
    fn arrival_free_adversarial_cells_surface_errors_instead_of_nan() {
        // runs = 0 means no measuring runs, hence no arrival samples and a
        // non-finite slowdown: the renderers must report that, not NaN-pad.
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 40;
        cfg.warmup_ms = 500.0;
        cfg.runs = 0;
        let strategy = AdversaryStrategy::DelayRelay { delay_ms: 10.0 };
        let report = crate::adversary::adversarial_campaign(&cfg, &strategy, 4).unwrap();
        assert!(!report.slowdown.is_finite());
        let outcome = ScenarioOutcome::new(
            "arrival-free".to_string(),
            Workload::Adversarial {
                strategy,
                attackers: 4,
            },
            vec![CellOutcome::new(
                "bitcoin".to_string(),
                "bitcoin".to_string(),
                40,
                CellReport::Adversary { report },
            )],
        );
        let errors = outcome.cell_errors();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].1.contains("no arrival samples"));
        assert!(outcome.table().is_empty(), "no NaN row for the dead cell");
        let text = outcome.render();
        assert!(text.contains("no arrival samples"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn sweep_describe_names_the_axes() {
        assert_eq!(Sweep::default().describe(), "single cell");
        assert_eq!(
            Sweep::over_protocols(paper_protocols()).describe(),
            "3 protocols"
        );
        assert_eq!(
            Sweep {
                protocols: vec![],
                thresholds_ms: vec![10.0, 20.0],
                num_nodes: vec![100, 200, 400],
                relays: vec![],
            }
            .describe(),
            "2 thresholds × 3 sizes"
        );
    }

    #[test]
    fn outcome_serde_round_trips() {
        let mut scenario = tiny(Workload::TxFlood);
        scenario.runs = 2;
        let outcome = scenario.run().unwrap();
        let back = ScenarioOutcome::from_json(&outcome.to_json()).unwrap();
        assert_eq!(back, outcome);
        // The stats cache is invisible to serialization: priming it must
        // not change the JSON.
        let json_before = outcome.to_json();
        let _ = outcome.delta_summary();
        let _ = outcome.delta_ecdf();
        assert_eq!(outcome.to_json(), json_before);
    }

    #[test]
    fn scenario_with_stop_rule_round_trips_and_validates() {
        let rule = crate::session::StopRule::CiHalfWidth {
            level: 0.9,
            rel_width: 0.2,
            min_runs: 4,
        };
        let scenario = tiny(Workload::TxFlood).with_stop(rule);
        scenario.validate().unwrap();
        let back = Scenario::from_json(&scenario.to_json()).unwrap();
        assert_eq!(back, scenario);
        assert_eq!(back.stop, Some(rule));
        // A pre-stop-field scenario file (no "stop" key) still parses.
        let legacy = tiny(Workload::TxFlood);
        let json = legacy.to_json().replace("  \"stop\": null,\n", "");
        assert!(!json.contains("stop"), "{json}");
        let parsed = Scenario::from_json(&json).unwrap();
        assert_eq!(parsed, legacy);
        assert_eq!(parsed.stop, None);
    }

    #[test]
    fn delta_accessors_are_cached_and_unchanged() {
        // The repeated-work regression: the accessors fold once, return
        // the same values on every call, and agree with a from-scratch
        // re-collect over the raw runs.
        let scenario = tiny(Workload::TxFlood).with_sweep(Sweep::over_protocols(paper_protocols()));
        let outcome = scenario.run().unwrap();
        let manual: Summary = outcome
            .cells
            .iter()
            .filter_map(CellOutcome::campaign)
            .flat_map(CampaignResult::deltas_ms)
            .collect();
        assert_eq!(outcome.delta_summary(), manual);
        assert_eq!(outcome.delta_summary(), manual, "second call identical");
        let pooled_ecdf = outcome.delta_ecdf().unwrap();
        assert_eq!(pooled_ecdf.len() as u64, manual.count());
        assert_eq!(outcome.delta_ecdf().unwrap(), pooled_ecdf);
        for cell in &outcome.cells {
            let summary = cell.delta_summary().unwrap();
            assert_eq!(summary, cell.campaign().unwrap().delta_summary());
            assert_eq!(cell.delta_summary().unwrap(), summary);
            let ecdf = cell.delta_ecdf().unwrap();
            assert_eq!(ecdf, cell.campaign().unwrap().delta_ecdf().unwrap());
        }
        // Cloned and deserialized outcomes recompute identically.
        let back = ScenarioOutcome::from_json(&outcome.to_json()).unwrap();
        assert_eq!(back.delta_summary(), manual);
    }

    #[test]
    fn custom_policy_runs_through_the_scenario_api() {
        let mut registry = ProtocolRegistry::builtins();
        registry.register("uniform", |_spec| {
            Ok(Box::new(bcbpt_net::RandomPolicy::new()))
        });
        let mut scenario = tiny(Workload::TxFlood);
        scenario.protocol = ProtocolSpec::new("uniform");
        assert!(scenario.run().is_err(), "builtins alone reject the spec");
        let outcome = scenario.run_in(&registry).unwrap();
        assert_eq!(outcome.cells[0].protocol, "uniform");
        assert!(!outcome.cells[0].campaign().unwrap().runs.is_empty());
    }

    #[test]
    fn digest_is_invariant_under_serialization_order() {
        // The canonical digest must not depend on how the JSON was laid
        // out on disk: re-indenting and reordering the top-level fields
        // parses to the same scenario, hence the same digest.
        let scenario = tiny(Workload::TxFlood);
        let digest = scenario.digest();
        assert_eq!(
            Scenario::from_json(&scenario.to_json()).unwrap().digest(),
            digest
        );
        let json = serde_json::to_string(&scenario).unwrap();
        assert!(
            json.starts_with("{\"name\""),
            "canonical order starts with name: {json}"
        );
        // Move the leading "name" field to the back of the object.
        let reordered = format!(
            "{{{},\"name\":{:?}}}",
            json[1..json.len() - 1]
                .strip_prefix(&format!("\"name\":{:?},", scenario.name))
                .expect("name is the first field"),
            scenario.name
        );
        let back = Scenario::from_json(&reordered).unwrap();
        assert_eq!(back, scenario);
        assert_eq!(back.digest(), digest);
    }

    #[test]
    fn digest_sees_every_content_change() {
        let base = tiny(Workload::TxFlood);
        let digest = base.digest();
        let mut seed = base.clone();
        seed.seed += 1;
        let mut runs = base.clone();
        runs.runs += 1;
        let mut name = base.clone();
        name.name.push('x');
        let mut proto = base.clone();
        proto.protocol = Protocol::Lbc.into();
        for changed in [seed, runs, name, proto] {
            assert_ne!(changed.digest(), digest);
        }
    }

    #[test]
    fn content_digest_and_shard_digest_move_together() {
        // Scenario::digest is content identity; shard::scenario_digest is
        // the same content under a wire-format-version prefix. They must
        // disagree with each other (so a format bump cannot be confused
        // with content equality) yet both track content changes.
        let a = tiny(Workload::TxFlood);
        let mut b = a.clone();
        b.seed += 1;
        assert_ne!(a.digest(), crate::shard::scenario_digest(&a));
        assert_ne!(a.digest(), b.digest());
        assert_ne!(
            crate::shard::scenario_digest(&a),
            crate::shard::scenario_digest(&b)
        );
    }
}
