//! Regeneration of the paper's figures.
//!
//! * [`fig3`] — Fig. 3: distribution of `Δt(m,n)` for the simulated Bitcoin
//!   protocol vs LBC vs BCBPT (`Dth = 25 ms`).
//! * [`fig4`] — Fig. 4: distribution of `Δt(m,n)` for BCBPT at thresholds
//!   30/50/100 ms.
//! * [`threshold_sweep`] — extension: a finer threshold sweep with cluster
//!   structure statistics.

use crate::experiment::{CampaignResult, ExperimentConfig};
use crate::scenario::{Scenario, Sweep, Workload};
use bcbpt_cluster::Protocol;
use bcbpt_stats::{Figure, StatTable};
use serde::{Deserialize, Serialize};

/// A regenerated figure: the plotted CDFs, a numeric summary table, and the
/// raw campaigns behind them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureBundle {
    /// CDF curves of `Δt(m,n)`, one series per protocol.
    pub figure: Figure,
    /// Summary statistics per protocol (mean/variance/median/p90/max).
    pub table: StatTable,
    /// The raw campaigns.
    pub campaigns: Vec<CampaignResult>,
}

impl FigureBundle {
    /// Renders the bundle as plain text (curves + table).
    pub fn render(&self) -> String {
        format!("{}\n{}", self.figure.render_columns(), self.table.render())
    }
}

/// Runs one tx-flood scenario sweep and projects it into a
/// [`FigureBundle`] with the figure's caption — the declarative scenario
/// API doing the work the hand-wired per-figure loops used to.
fn run_protocols(
    base: &ExperimentConfig,
    protocols: &[Protocol],
    caption: &str,
) -> Result<FigureBundle, String> {
    let scenario = Scenario::from_experiment(caption, base, Workload::TxFlood)
        .with_sweep(Sweep::over_protocols(protocols.iter().copied()));
    let outcome = scenario.run()?;
    let mut figure = outcome
        .figure()
        .unwrap_or_else(|| Figure::new("", "delta_t_ms", "cdf"));
    figure.caption = caption.to_string();
    let mut table = StatTable::new(
        format!("{caption} — summary of Δt(m,n) in ms"),
        &["mean", "variance", "median", "p90", "max", "samples"],
    );
    let mut campaigns = Vec::with_capacity(outcome.cells.len());
    for cell in outcome.cells {
        let campaign = match cell.report {
            crate::scenario::CellReport::Campaign { campaign } => campaign,
            _ => unreachable!("tx-flood cells carry campaigns"),
        };
        let label = campaign.protocol.clone();
        match campaign.delta_ecdf() {
            Ok(ecdf) => table.push_row(
                label,
                vec![
                    ecdf.mean(),
                    ecdf.sample_variance(),
                    ecdf.median(),
                    ecdf.quantile(0.9),
                    ecdf.max(),
                    ecdf.len() as f64,
                ],
            ),
            Err(_) => table.push_row(label, vec![f64::NAN; 6]),
        }
        campaigns.push(campaign);
    }
    Ok(FigureBundle {
        figure,
        table,
        campaigns,
    })
}

/// Fig. 3: `Δt(m,n)` distributions for Bitcoin vs LBC vs BCBPT
/// (`dt = 25 ms`), all three protocols in the *same* simulated environment
/// (same seed, placement, routes, churn).
///
/// Expected shape (paper §V.C): BCBPT dominates — lower delays and lower
/// variance than LBC, which in turn beats vanilla Bitcoin.
///
/// # Errors
///
/// Propagates configuration errors from the campaigns.
pub fn fig3(base: &ExperimentConfig) -> Result<FigureBundle, String> {
    run_protocols(
        base,
        &[Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()],
        "Fig.3: distribution of Δt(m,n) — Bitcoin vs LBC vs BCBPT (dt=25ms)",
    )
}

/// Fig. 4: `Δt(m,n)` distributions for BCBPT at `dt ∈ {30, 50, 100}` ms.
///
/// Expected shape (paper §V.C): "less distance threshold performs less
/// variance of delays" — the 30 ms curve dominates the 50 ms curve, which
/// dominates the 100 ms curve.
///
/// # Errors
///
/// Propagates configuration errors from the campaigns.
pub fn fig4(base: &ExperimentConfig) -> Result<FigureBundle, String> {
    run_protocols(
        base,
        &[
            Protocol::Bcbpt { threshold_ms: 30.0 },
            Protocol::Bcbpt { threshold_ms: 50.0 },
            Protocol::Bcbpt {
                threshold_ms: 100.0,
            },
        ],
        "Fig.4: distribution of Δt(m,n) — BCBPT at dt = 30/50/100 ms",
    )
}

/// Extension experiment: fine-grained threshold sweep, reporting both delay
/// statistics and cluster structure for each `Dth`.
///
/// # Errors
///
/// Propagates configuration errors from the campaigns.
pub fn threshold_sweep(
    base: &ExperimentConfig,
    thresholds_ms: &[f64],
) -> Result<StatTable, String> {
    let mut table = StatTable::new(
        "Threshold sweep: Δt(m,n) statistics and cluster structure vs Dth",
        &[
            "dt_ms",
            "mean",
            "variance",
            "p90",
            "clusters",
            "mean_cluster",
            "max_cluster",
        ],
    );
    let scenario = Scenario::from_experiment("threshold_sweep", base, Workload::TxFlood)
        .with_sweep(Sweep::over_thresholds_ms(thresholds_ms.iter().copied()));
    let outcome = scenario.run()?;
    for (&dt, cell) in thresholds_ms.iter().zip(&outcome.cells) {
        let campaign = cell.campaign().expect("tx-flood cells carry campaigns");
        let (mean, variance, p90) = match campaign.delta_ecdf() {
            Ok(e) => (e.mean(), e.sample_variance(), e.quantile(0.9)),
            Err(_) => (f64::NAN, f64::NAN, f64::NAN),
        };
        let clusters = campaign.cluster_sizes.len();
        let mean_cluster = if clusters == 0 {
            0.0
        } else {
            campaign.cluster_sizes.iter().sum::<usize>() as f64 / clusters as f64
        };
        let max_cluster = campaign.cluster_sizes.first().copied().unwrap_or(0) as f64;
        table.push_row(
            format!("dt={dt}ms"),
            vec![
                dt,
                mean,
                variance,
                p90,
                clusters as f64,
                mean_cluster,
                max_cluster,
            ],
        );
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 50;
        cfg.warmup_ms = 800.0;
        cfg.window_ms = 12_000.0;
        cfg.runs = 2;
        cfg
    }

    #[test]
    fn fig3_produces_three_series() {
        let bundle = fig3(&tiny()).unwrap();
        assert_eq!(bundle.figure.series.len(), 3);
        assert_eq!(bundle.campaigns.len(), 3);
        assert_eq!(bundle.table.len(), 3);
        let text = bundle.render();
        assert!(text.contains("bitcoin"));
        assert!(text.contains("lbc"));
        assert!(text.contains("bcbpt(dt=25ms)"));
    }

    #[test]
    fn fig4_sweeps_three_thresholds() {
        let bundle = fig4(&tiny()).unwrap();
        assert_eq!(bundle.figure.series.len(), 3);
        let labels: Vec<&str> = bundle
            .figure
            .series
            .iter()
            .map(|s| s.label.as_str())
            .collect();
        assert!(labels.contains(&"bcbpt(dt=30ms)"));
        assert!(labels.contains(&"bcbpt(dt=50ms)"));
        assert!(labels.contains(&"bcbpt(dt=100ms)"));
    }

    #[test]
    fn sweep_reports_cluster_structure() {
        let table = threshold_sweep(&tiny(), &[20.0, 150.0]).unwrap();
        assert_eq!(table.len(), 2);
        let rows: Vec<_> = table.rows().collect();
        // clusters column (index 4) is positive for both thresholds.
        assert!(rows[0].1[4] >= 1.0);
        assert!(rows[1].1[4] >= 1.0);
    }

    #[test]
    fn cdf_series_are_monotone() {
        let bundle = fig3(&tiny()).unwrap();
        for series in &bundle.figure.series {
            for w in series.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "series {} not monotone", series.label);
            }
        }
    }
}
