//! Campaign-runner and shard metrics, published through the `bcbpt-obs`
//! global registry.
//!
//! All instruments here are wall-clock side channels: they observe how
//! long phases took and how the fold behaved, and can never feed back
//! into RNG streams, fold order or serialized outcomes (the determinism
//! contract in `ARCHITECTURE.md`). Handles are cached in `OnceLock`s so
//! steady-state updates never touch the registry mutex.

use bcbpt_obs::{Counter, Gauge, WallHistogram};
use std::sync::{Arc, OnceLock};

/// Wall-clock time to build + warm a cell's base network (cache misses
/// and adversarial campaigns; cache hits skip this entirely).
pub(crate) fn warmup_seconds() -> &'static Arc<WallHistogram> {
    static H: OnceLock<Arc<WallHistogram>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().histogram(
            "bcbpt_runner_warmup_seconds",
            "Wall-clock time to build and warm a campaign cell's base network",
        )
    })
}

/// Wall-clock time of the measuring phase of one campaign range (all
/// runs, serial or parallel, excluding warmup).
pub(crate) fn measure_seconds() -> &'static Arc<WallHistogram> {
    static H: OnceLock<Arc<WallHistogram>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().histogram(
            "bcbpt_runner_measure_seconds",
            "Wall-clock time of a campaign range's measuring phase (warmup excluded)",
        )
    })
}

/// Wall-clock time of one measuring run (clone, reseed, window, harvest).
pub(crate) fn run_seconds() -> &'static Arc<WallHistogram> {
    static H: OnceLock<Arc<WallHistogram>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().histogram(
            "bcbpt_runner_run_seconds",
            "Wall-clock time of one measuring run",
        )
    })
}

/// High-water mark of out-of-order runs parked in the campaign fold.
pub(crate) fn fold_park_depth() -> &'static Arc<Gauge> {
    static H: OnceLock<Arc<Gauge>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().gauge(
            "bcbpt_runner_fold_park_depth_highwater",
            "Largest number of out-of-order run outcomes parked in the fold",
        )
    })
}

/// Warm-snapshot cache lookups that found a warmed network.
pub(crate) fn warm_cache_hits() -> &'static Arc<Counter> {
    static H: OnceLock<Arc<Counter>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().counter(
            "bcbpt_runner_warm_cache_hits_total",
            "Warm-snapshot cache lookups served from cache",
        )
    })
}

/// Warm-snapshot cache lookups that had to build + warm from scratch.
pub(crate) fn warm_cache_misses() -> &'static Arc<Counter> {
    static H: OnceLock<Arc<Counter>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().counter(
            "bcbpt_runner_warm_cache_misses_total",
            "Warm-snapshot cache lookups that built and warmed from scratch",
        )
    })
}

/// Simulated bytes put on the wire by completed campaigns and mining
/// experiments (warmup + measurement). Simulated traffic, not host I/O —
/// the denominator of the fleet-wide waste ratio.
pub(crate) fn net_bytes_total() -> &'static Arc<Counter> {
    static H: OnceLock<Arc<Counter>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().counter(
            "bcbpt_net_bytes_total",
            "Simulated wire bytes of completed campaigns and mining experiments",
        )
    })
}

/// Simulated bytes that carried nothing new (redundant deliveries), as
/// counted by the relay layer's waste accounting. Zero unless a relay
/// strategy is installed.
pub(crate) fn net_redundant_bytes_total() -> &'static Arc<Counter> {
    static H: OnceLock<Arc<Counter>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().counter(
            "bcbpt_net_redundant_bytes_total",
            "Simulated redundant wire bytes (duplicate or dependent deliveries)",
        )
    })
}

/// Wall-clock latency of persisting one shard checkpoint through a sink.
pub(crate) fn checkpoint_write_seconds() -> &'static Arc<WallHistogram> {
    static H: OnceLock<Arc<WallHistogram>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().histogram(
            "bcbpt_shard_checkpoint_write_seconds",
            "Wall-clock latency of writing one shard checkpoint",
        )
    })
}

/// Wall-clock time `merge_shards` spends validating parts (seal digests,
/// plan recomputation, snapshot agreement) before any accumulator math.
pub(crate) fn merge_verify_seconds() -> &'static Arc<WallHistogram> {
    static H: OnceLock<Arc<WallHistogram>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().histogram(
            "bcbpt_shard_merge_verify_seconds",
            "Wall-clock time merge_shards spends verifying parts before merging",
        )
    })
}

/// Coordinator evaluation rounds: one per checkpoint a cell's stop rule
/// actually consumed (full envelope coverage reached).
pub(crate) fn coord_rounds_total() -> &'static Arc<Counter> {
    static H: OnceLock<Arc<Counter>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().counter(
            "bcbpt_coord_rounds_total",
            "Coordinator checkpoint evaluations across all cells",
        )
    })
}

/// Runs the fleet skipped because a coordinator stop decision clamped or
/// truncated shard ranges (per shard, not per cell).
pub(crate) fn coord_runs_saved_total() -> &'static Arc<Counter> {
    static H: OnceLock<Arc<Counter>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().counter(
            "bcbpt_coord_runs_saved_total",
            "Runs shards skipped due to coordinator stop decisions",
        )
    })
}

/// Wall-clock time a shard spends blocked on the end-of-cell coordinator
/// barrier (waiting for peers' envelopes and the decision).
pub(crate) fn coord_wait_seconds() -> &'static Arc<WallHistogram> {
    static H: OnceLock<Arc<WallHistogram>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().histogram(
            "bcbpt_coord_wait_seconds",
            "Wall-clock time a shard waits on the coordinator's stop decision",
        )
    })
}

/// Touches every `bcbpt-core` (and transitively `bcbpt-sim`) metric so
/// expositions and `--metrics-out` snapshots list them even before first
/// use. The serve daemon calls this at startup; the scenario driver calls
/// it before writing a snapshot.
pub fn register_metrics() {
    bcbpt_sim::obs::register_metrics();
    let _ = warmup_seconds();
    let _ = measure_seconds();
    let _ = run_seconds();
    let _ = fold_park_depth();
    let _ = warm_cache_hits();
    let _ = warm_cache_misses();
    let _ = net_bytes_total();
    let _ = net_redundant_bytes_total();
    let _ = checkpoint_write_seconds();
    let _ = merge_verify_seconds();
    let _ = coord_rounds_total();
    let _ = coord_runs_saved_total();
    let _ = coord_wait_seconds();
}
