//! Process-wide warm-snapshot cache: build + warm a cell's network once,
//! replay it everywhere the same warm recipe appears.
//!
//! The warm-snapshot replay model (see [`crate::shard`]) rebuilds
//! `Network::build(net, policy, seed)` and warms it for `warmup_ms` from
//! scratch for every campaign cell — deterministic, but the single
//! biggest fixed cost a short campaign pays (ROADMAP: warmup is per
//! shard, measurement is per run). A [`WarmCache`] memoizes the warmed
//! [`Network`] under its *warm-recipe digest* — the canonical-JSON FNV-1a
//! over exactly the inputs that determine the warmed state (network
//! config, protocol label, seed, warmup duration; measurement knobs like
//! `window_ms` and `runs` are deliberately excluded) — so sweep cells,
//! repeated shard runs, and service jobs sharing a recipe warm once and
//! clone thereafter.
//!
//! Correctness: warmup is deterministic, and measuring runs already
//! execute on clones of the warmed snapshot, so handing out one more
//! clone level changes nothing — a cached campaign is byte-identical to
//! an uncached one (pinned by `warm::tests` and the shard tests).
//! Campaigns with a behavioural adversary installed bypass the cache
//! entirely (the adversary shapes warmup). The recipe digest does not see
//! *which* [`ProtocolRegistry`](bcbpt_cluster::ProtocolRegistry) resolves
//! a protocol spec, so one cache must not be shared across registries
//! that map the same spec to different policies.

use crate::experiment::ExperimentConfig;
use bcbpt_net::Network;
use serde::{Serialize, Value};
use std::sync::Mutex;

/// The warm-recipe digest of one campaign configuration: FNV-1a over the
/// canonical JSON of the fields that determine the warmed network state.
/// `window_ms` and `runs` are excluded on purpose — they only shape the
/// measurement phase, so campaigns differing only there share warm state.
pub fn warm_recipe_digest(cfg: &ExperimentConfig) -> u64 {
    let mut fields = vec![
        ("net".to_string(), cfg.net.to_value()),
        ("protocol".to_string(), Value::Str(cfg.protocol.to_string())),
        ("seed".to_string(), Value::U64(cfg.seed)),
        ("warmup_ms".to_string(), Value::F64(cfg.warmup_ms)),
    ];
    // The relay strategy shapes warmup traffic accounting (and, for coded
    // relays, the relay RNG draw order), so it is part of the recipe — but
    // only when set, keeping every relay-free digest identical to builds
    // that predate the relay seam.
    if let Some(relay) = &cfg.relay {
        fields.push(("relay".to_string(), Value::Str(relay.to_string())));
    }
    let recipe = Value::Map(fields);
    let json = serde_json::to_string(&recipe).expect("recipe serializes");
    crate::shard::fnv1a64(json.as_bytes())
}

/// Cache state: recency-ordered entries (least recently used first) plus
/// the hit/miss counters the service's `/stats` endpoint reports.
struct WarmCacheInner {
    entries: Vec<(u64, Network)>,
    hits: u64,
    misses: u64,
}

/// A bounded, thread-safe cache of warmed-up [`Network`] snapshots keyed
/// by [`warm_recipe_digest`]. Share one per process (or per service) via
/// reference or `Arc`; lookups clone the cached network, which is exactly
/// what every measuring run does anyway.
pub struct WarmCache {
    capacity: usize,
    inner: Mutex<WarmCacheInner>,
}

impl WarmCache {
    /// Creates a cache holding at most `capacity` warmed networks
    /// (`0` is treated as 1). Eviction is least-recently-used.
    pub fn new(capacity: usize) -> Self {
        WarmCache {
            capacity: capacity.max(1),
            inner: Mutex::new(WarmCacheInner {
                entries: Vec::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Cache lookups that found a warmed network.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("warm cache lock").hits
    }

    /// Cache lookups that had to build + warm from scratch.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("warm cache lock").misses
    }

    /// Warmed networks currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("warm cache lock").entries.len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a clone of the warmed network for `cfg`'s recipe, building
    /// and warming through `build` on a miss. The lock is released during
    /// `build` (warmup can take seconds); two concurrent misses of one
    /// recipe both build, and the first insert wins.
    pub(crate) fn warm_or_build(
        &self,
        cfg: &ExperimentConfig,
        build: impl FnOnce() -> Result<Network, String>,
    ) -> Result<Network, String> {
        let key = warm_recipe_digest(cfg);
        {
            let mut inner = self.inner.lock().expect("warm cache lock");
            if let Some(pos) = inner.entries.iter().position(|(k, _)| *k == key) {
                let entry = inner.entries.remove(pos);
                let warmed = entry.1.clone();
                inner.entries.push(entry);
                inner.hits += 1;
                crate::obs::warm_cache_hits().inc();
                return Ok(warmed);
            }
        }
        let warmed = build()?;
        let mut inner = self.inner.lock().expect("warm cache lock");
        inner.misses += 1;
        crate::obs::warm_cache_misses().inc();
        if !inner.entries.iter().any(|(k, _)| *k == key) {
            if inner.entries.len() >= self.capacity {
                inner.entries.remove(0);
            }
            inner.entries.push((key, warmed.clone()));
        }
        Ok(warmed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_cluster::Protocol;

    fn tiny(runs: usize) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 60;
        cfg.warmup_ms = 1_000.0;
        cfg.window_ms = 15_000.0;
        cfg.runs = runs;
        cfg
    }

    #[test]
    fn recipe_digest_ignores_measurement_knobs() {
        let a = tiny(3);
        let mut b = tiny(3);
        b.window_ms *= 2.0;
        b.runs += 40;
        assert_eq!(warm_recipe_digest(&a), warm_recipe_digest(&b));
    }

    #[test]
    fn recipe_digest_sees_every_warm_input() {
        let base = tiny(3);
        let mut seed = base.clone();
        seed.seed += 1;
        let mut warm = base.clone();
        warm.warmup_ms += 1.0;
        let mut proto = base.clone();
        proto.protocol = Protocol::Lbc.into();
        let mut net = base.clone();
        net.net.num_nodes += 1;
        let relay = base.with_relay("compact");
        for other in [seed, warm, proto, net, relay] {
            assert_ne!(warm_recipe_digest(&base), warm_recipe_digest(&other));
        }
        // Distinct relay strategies warm distinct state.
        assert_ne!(
            warm_recipe_digest(&base.with_relay("compact")),
            warm_recipe_digest(&base.with_relay("rlnc(chunks=8)"))
        );
    }

    #[test]
    fn cached_campaign_is_byte_identical_and_counts_hits() {
        let cfg = tiny(3);
        let plain = cfg.run_serial().unwrap();
        let cache = WarmCache::new(4);
        let registry = bcbpt_cluster::ProtocolRegistry::builtins();
        let first = cfg
            .run_campaign(&registry, 1, None, Some(&cache), None, None)
            .unwrap();
        let second = cfg
            .run_campaign(&registry, 1, None, Some(&cache), None, None)
            .unwrap();
        assert_eq!(first, plain);
        assert_eq!(second, plain);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn lru_eviction_keeps_the_capacity_bound() {
        let cache = WarmCache::new(2);
        let registry = bcbpt_cluster::ProtocolRegistry::builtins();
        for protocol in [Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()] {
            let cfg = tiny(1).with_protocol(protocol);
            cfg.run_campaign(&registry, 1, None, Some(&cache), None, None)
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 3);
        // Bitcoin (least recently used) was evicted: warming it again is a
        // miss, while LBC is still resident.
        let cfg = tiny(1).with_protocol(Protocol::Lbc);
        cfg.run_campaign(&registry, 1, None, Some(&cache), None, None)
            .unwrap();
        assert_eq!(cache.hits(), 1);
        let cfg = tiny(1).with_protocol(Protocol::Bitcoin);
        cfg.run_campaign(&registry, 1, None, Some(&cache), None, None)
            .unwrap();
        assert_eq!(cache.misses(), 4);
    }
}
