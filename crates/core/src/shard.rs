//! Cross-host campaign sharding: split a scenario's run range over
//! independent processes, merge the parts back byte-identically.
//!
//! The paper's headline figures are distributions over ~1000 independent
//! replicate runs (§V.B). Runs are mutually independent replays of one
//! warmed-up snapshot — every per-run RNG stream derives from
//! `(seed, run_index)`, never from what ran before — so a campaign's run
//! range can be partitioned across processes or hosts with no shared
//! state at all:
//!
//! 1. [`ShardPlan::plan`] splits `0..runs` into `shard_count` disjoint
//!    contiguous ranges.
//! 2. Each shard process calls [`run_shard`] with its [`ShardSpec`]: it
//!    rebuilds and warms the network deterministically from the scenario
//!    (the *warm-snapshot replay model* — the snapshot ships as a recipe,
//!    not as state, because reconstruction is deterministic), captures a
//!    [`WarmSnapshot`] envelope whose content digest fingerprints the
//!    warmed state, executes only its run range, and serializes a
//!    [`PartialOutcome`].
//! 3. [`merge_shards`] folds the parts **in shard order** into a
//!    [`ScenarioOutcome`] that is byte-identical to
//!    [`Scenario::run_batch`] over the same scenario: run vectors
//!    concatenate in run-index order, [`MessageStats`] counters add
//!    exactly, and the [`StreamingSummary`]/[`EcdfBuilder`] accumulator
//!    shards merge associatively. Envelope version, scenario digest and
//!    warm-state digests are all checked, so parts produced by a
//!    different scenario file, binary format or diverged warmup are
//!    rejected instead of silently merged.
//!
//! **Every workload shards.** Format v3 drops the old shard-0-only
//! "deferred" escape hatch; each workload family has a sharding mode:
//!
//! - *Streaming* campaigns (tx-flood, churn-burst, overhead-probe) split
//!   by run range as above — one [`CampaignSlice`] per shard.
//! - *Paired* adversarial campaigns split the same way, twice: every
//!   shard runs its range of the clean (inert-force) campaign **and** of
//!   the attacked campaign off the same warmed snapshots the batch path
//!   uses, and the merge reassembles both [`CampaignSlice`] streams into
//!   a byte-identical `AdversaryReport`.
//! - *Mining* cells with `runs >= 1` replicate the mining window off one
//!   warmed snapshot (each run reseeded from `(seed, run_index)`), so
//!   their run range splits like any campaign's.
//! - Single-shot cells (partition, eclipse, legacy `runs: 0` mining) are
//!   *replicated*: every shard executes them whole — they are
//!   deterministic, so all copies agree — and the merge verifies the
//!   copies are byte-identical before keeping one.
//!
//! Adaptive [`StopRule`](crate::StopRule)s still cannot be evaluated by
//! a lone shard — a stop decision depends on the folded prefix of *all*
//! runs. Plain sharded execution therefore **rejects** them (consume the
//! full budget, exactly the [`Scenario::run_batch`] semantics), but a
//! fleet may attach a [`StopCoordinator`](crate::coordinate) via
//! [`ShardRunOptions::coordinator`]: shards submit digest-sealed folded
//! prefixes at deterministic run-index boundaries, the coordinator
//! evaluates the rule at global checkpoints, and every shard truncates to
//! the broadcast stop index — the merged campaign is then a strict,
//! deterministic `FixedRuns` prefix of the budget (see
//! [`crate::coordinate`] for the protocol and its determinism argument).
//!
//! # Examples
//!
//! A two-shard fig3 campaign in one process (across hosts, each
//! [`run_shard`] call is its own process and the parts travel as JSON):
//!
//! ```no_run
//! use bcbpt_core::{merge_shards, run_shard, Scenario, ShardSpec};
//!
//! let scenario = Scenario::builtin("fig3").expect("built-in").quick_scaled();
//! let parts = vec![
//!     run_shard(&scenario, ShardSpec::new(0, 2)?)?,
//!     run_shard(&scenario, ShardSpec::new(1, 2)?)?,
//! ];
//! let merged = merge_shards(parts)?;
//! assert_eq!(merged, scenario.run_batch()?);
//! # Ok::<(), String>(())
//! ```

use crate::adversary::{assemble_report, WarmInfiltration};
use crate::coordinate::{
    is_shard_boundary, PrefixEnvelope, StopCoordinator, StopDecision, COORD_FORMAT_VERSION,
};
use crate::experiment::{CampaignResult, ExperimentConfig, RunCheckpoint, RunResult};
use crate::forks::{fork_report_from_runs, mine_range, mining_warm, ForkRun};
use crate::overhead::OverheadReport;
use crate::resilience::{
    CellProgress, Checkpoint, PrefixTraffic, QuarantinedPart, RepairPlan, RunFailure, SalvageReport,
};
use crate::scenario::{CellOutcome, CellReport, Scenario, ScenarioCell, ScenarioOutcome, Workload};
use crate::session::{RunEvent, RunStats};
use crate::warm::WarmCache;
use bcbpt_adversary::AdversaryForce;
use bcbpt_cluster::ProtocolRegistry;
use bcbpt_net::{MessageStats, Network};
use bcbpt_stats::{EcdfBuilder, StreamingSummary};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::Mutex;

/// Version of the shard wire format ([`WarmSnapshot`], [`PartialOutcome`]
/// and [`Checkpoint`] envelopes). Bumped whenever their serialized shape
/// or the digest recipe changes; [`merge_shards`] refuses parts from any
/// other version. Version 2 added per-part content digests and the
/// `failures` stream (panic isolation). Version 3 replaced the
/// shard-0-only `Whole`/`Deferred` cells with sharded paired, mining and
/// replicated variants, and added coordinated-stop truncation metadata
/// (`stop_at`, per-boundary traffic snapshots in checkpoints).
pub const SHARD_FORMAT_VERSION: u32 = 3;

/// FNV-1a over `bytes` — the content-digest primitive of the shard
/// protocol (stable, dependency-free, and plenty for integrity checks;
/// this is corruption/mismatch detection, not cryptography).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of a scenario under the current shard format: every
/// [`PartialOutcome`] carries it, and [`merge_shards`] refuses to combine
/// parts whose digests differ — shards must have run the *same* scenario,
/// not merely scenarios with the same name.
pub fn scenario_digest(scenario: &Scenario) -> u64 {
    let json = serde_json::to_string(scenario).expect("scenario serializes");
    fnv1a64(format!("{SHARD_FORMAT_VERSION}\n{json}").as_bytes())
}

/// Which shard of how many — the `--shard i/N` coordinate a shard process
/// is launched with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This shard's index, `0..count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// Builds a spec, rejecting `count == 0` and `index >= count`.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be >= 1".to_string());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shard(s) (valid: 0..{count})"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses the CLI form `"i/N"`, e.g. `"0/4"`.
    ///
    /// # Errors
    ///
    /// Returns a description of the parse or range problem.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| format!("shard spec {text:?} is not of the form i/N (e.g. 0/4)"))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|e| format!("shard index in {text:?}: {e}"))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|e| format!("shard count in {text:?}: {e}"))?;
        ShardSpec::new(index, count)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One shard's slice of a campaign's run-index space: shard `shard_index`
/// of `shard_count` owns the contiguous range `run_start..run_end`.
///
/// Ranges are disjoint, cover `0..runs` exactly, and are balanced to
/// within one run (the first `runs % shard_count` shards take one extra).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// This shard's index, `0..shard_count`.
    pub shard_index: usize,
    /// Total number of shards in the plan.
    pub shard_count: usize,
    /// First run index this shard executes (inclusive).
    pub run_start: usize,
    /// One past the last run index this shard executes (exclusive).
    pub run_end: usize,
}

impl ShardPlan {
    /// Splits `0..runs` into `shard_count` disjoint contiguous ranges.
    ///
    /// # Errors
    ///
    /// Rejects `shard_count == 0`.
    pub fn plan(runs: usize, shard_count: usize) -> Result<Vec<ShardPlan>, String> {
        if shard_count == 0 {
            return Err("shard count must be >= 1".to_string());
        }
        let base = runs / shard_count;
        let extra = runs % shard_count;
        let mut plans = Vec::with_capacity(shard_count);
        let mut start = 0;
        for shard_index in 0..shard_count {
            let len = base + usize::from(shard_index < extra);
            plans.push(ShardPlan {
                shard_index,
                shard_count,
                run_start: start,
                run_end: start + len,
            });
            start += len;
        }
        Ok(plans)
    }

    /// The plan entry for one [`ShardSpec`] coordinate.
    ///
    /// # Errors
    ///
    /// Rejects invalid specs (see [`ShardSpec::new`]).
    pub fn for_shard(runs: usize, spec: ShardSpec) -> Result<ShardPlan, String> {
        let plans = ShardPlan::plan(runs, spec.count)?;
        plans
            .into_iter()
            .nth(spec.index)
            .ok_or_else(|| format!("shard index {} out of range", spec.index))
    }

    /// The run-index range this shard executes.
    pub fn run_range(&self) -> Range<usize> {
        self.run_start..self.run_end
    }

    /// Number of runs this shard executes.
    pub fn len(&self) -> usize {
        self.run_end - self.run_start
    }

    /// `true` when this shard executes no runs (more shards than runs).
    pub fn is_empty(&self) -> bool {
        self.run_start == self.run_end
    }
}

/// The serialized identity of one cell's warmed-up snapshot.
///
/// The actual warm state (topology, cluster membership, pending events,
/// RNG positions) is never shipped: it is *replayed* — every shard
/// rebuilds `Network::build(net, policy, seed)` and warms it for
/// `warmup_ms`, which is deterministic, so all shards converge on the
/// same state. What travels in the envelope is the recipe plus a content
/// digest over the warmed state's observable fingerprint (online count,
/// warmup traffic counters, cluster sizes). [`merge_shards`] requires
/// every shard's snapshot of a cell to be identical and digest-valid, so
/// a shard built by a different binary, scenario or diverged warmup is
/// rejected instead of silently corrupting the merge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmSnapshot {
    /// Shard wire-format version ([`SHARD_FORMAT_VERSION`]).
    pub version: u32,
    /// Protocol label of the cell (e.g. `"bcbpt(dt=25ms)"`).
    pub protocol: String,
    /// Network size the cell ran at.
    pub num_nodes: usize,
    /// Campaign master seed.
    pub seed: u64,
    /// Warmup duration that produced the snapshot, ms.
    pub warmup_ms: f64,
    /// Measurement window each run will simulate, ms.
    pub window_ms: f64,
    /// Online population at the end of warmup.
    pub online: usize,
    /// Traffic counters of the warmup phase — byte-exact across shards.
    pub warmup_traffic: MessageStats,
    /// Cluster sizes at the end of warmup, descending (empty for
    /// non-clustering protocols).
    pub cluster_sizes: Vec<usize>,
    /// FNV-1a content digest over the canonical serialization of every
    /// field above (with `digest` itself zeroed).
    pub digest: u64,
}

impl WarmSnapshot {
    /// Captures the envelope of `cfg`'s warmed-up network.
    pub fn capture(cfg: &ExperimentConfig, warmed: &Network) -> Self {
        let mut snapshot = WarmSnapshot {
            version: SHARD_FORMAT_VERSION,
            protocol: cfg.protocol.to_string(),
            num_nodes: cfg.net.num_nodes,
            seed: cfg.seed,
            warmup_ms: cfg.warmup_ms,
            window_ms: cfg.window_ms,
            online: warmed.online_count(),
            warmup_traffic: warmed.stats().clone(),
            cluster_sizes: crate::experiment::cluster_sizes(warmed),
            digest: 0,
        };
        snapshot.digest = snapshot.fingerprint();
        snapshot
    }

    /// The digest the current fields imply (with `digest` zeroed).
    fn fingerprint(&self) -> u64 {
        let mut zeroed = self.clone();
        zeroed.digest = 0;
        let json = serde_json::to_string(&zeroed).expect("snapshot serializes");
        fnv1a64(json.as_bytes())
    }

    /// Checks the envelope: version must match the running binary's
    /// format, and the digest must match the fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch.
    pub fn verify(&self) -> Result<(), String> {
        if self.version != SHARD_FORMAT_VERSION {
            return Err(format!(
                "warm snapshot has wire-format version {} but this binary speaks {} — \
                 re-run the shards with a matching binary",
                self.version, SHARD_FORMAT_VERSION
            ));
        }
        let expected = self.fingerprint();
        if self.digest != expected {
            return Err(format!(
                "warm snapshot digest {:#018x} does not match its contents ({:#018x}) — \
                 the part file is corrupt or was edited",
                self.digest, expected
            ));
        }
        Ok(())
    }
}

/// One shard's slice of one measuring-run campaign: the runs of the
/// shard's (possibly stop-truncated) range plus the folded accumulator
/// shards. Streaming cells carry one; paired adversarial cells carry two
/// (clean and attacked).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSlice {
    /// Identity of the warmed-up snapshot the runs replayed.
    pub snapshot: WarmSnapshot,
    /// This shard's measuring runs, ascending by `run_index`.
    pub runs: Vec<RunResult>,
    /// Runs in this shard's range that panicked (caught per run),
    /// ascending by `run_index`, disjoint from `runs`.
    pub failures: Vec<RunFailure>,
    /// Sum of the kept range's measurement-window traffic (total minus
    /// warmup) — integer counters, so cross-shard merge is exact.
    pub window_traffic: MessageStats,
    /// Pooled `Δt(m,n)` accumulator folded over the kept range.
    pub deltas: StreamingSummary,
    /// Per-run mean `Δt(m,n)` accumulator folded over the kept range.
    pub run_means: StreamingSummary,
    /// `Δt(m,n)` samples in arrival (= run-index fold) order; merging
    /// shard builders in shard order reproduces the batch sample
    /// stream exactly.
    pub ecdf: EcdfBuilder,
    /// Run indices this shard kept: its full planned range, or the
    /// coordinator-truncated prefix of it.
    pub runs_used: usize,
    /// The coordinator's global stop index, when a coordinated run
    /// stopped early: runs `>= stop_at` were truncated away on every
    /// shard. `None` for uncoordinated runs and full-budget decisions.
    /// The merge requires all shards to agree.
    pub stop_at: Option<usize>,
}

/// One cell's contribution to a [`PartialOutcome`].
// One value per cell, built once and serialized immediately — the size
// skew between `Paired` and the rest never multiplies across a hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellShard {
    /// A streaming campaign cell's run-range slice.
    Campaign {
        /// The shard's slice.
        slice: CampaignSlice,
    },
    /// A paired adversarial campaign cell's run-range slices: every shard
    /// runs its range of *both* campaigns (clean baseline under an inert
    /// force, attacked under the real one) off the same warmed snapshots
    /// the batch path uses, plus the warm-time infiltration measurements
    /// (identical on every shard — the merge checks).
    Paired {
        /// The clean (inert-force) campaign's slice.
        clean: CampaignSlice,
        /// The attacked campaign's slice.
        attacked: CampaignSlice,
        /// Warm-time infiltration of the attacked campaign.
        infiltration: WarmInfiltration,
        /// Warm-time infiltration of the clean baseline.
        clean_infiltration: WarmInfiltration,
    },
    /// A replicated-mining cell's run-range slice: this shard's mining
    /// runs off the shared warmed snapshot.
    Mining {
        /// Identity of the warmed-up snapshot the runs replayed.
        snapshot: WarmSnapshot,
        /// The relay spec label, when the cell installs one (rides along
        /// because the snapshot envelope does not carry it).
        relay: Option<String>,
        /// This shard's mining runs, ascending by `run_index`.
        runs: Vec<ForkRun>,
        /// Run indices this shard consumed (its full planned range).
        runs_used: usize,
    },
    /// A single-shot cell (partition, eclipse, legacy `runs: 0` mining)
    /// executed whole on *every* shard: the runs are deterministic, so
    /// all copies agree, and the merge verifies byte-identity before
    /// keeping shard 0's.
    Replicated {
        /// The cell's complete report.
        report: CellReport,
    },
    /// The cell failed at run time on this shard; the merge surfaces the
    /// error as a [`CellReport::Failed`], matching `run_batch`.
    Failed {
        /// The run-time error.
        error: String,
    },
}

/// Label and environment of one cell inside a [`PartialOutcome`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialCell {
    /// Cell label (protocol, plus `@n=…` on a size sweep).
    pub label: String,
    /// The protocol spec the cell ran.
    pub protocol: String,
    /// Network size the cell ran at.
    pub num_nodes: usize,
    /// This shard's contribution.
    pub part: CellShard,
}

/// One shard's serialized result: what `scenario shard run` writes and
/// `scenario shard merge` consumes.
///
/// The wire format is JSON with this field layout (see `ARCHITECTURE.md`
/// for the full table):
///
/// | field | contents |
/// |---|---|
/// | `version` | [`SHARD_FORMAT_VERSION`] |
/// | `scenario` | scenario name |
/// | `scenario_digest` | [`scenario_digest`] of the exact scenario run |
/// | `workload` | the scenario's [`Workload`] (echoed for self-description) |
/// | `scenario_runs` | the scenario's whole `runs` budget |
/// | `plan` | this shard's [`ShardPlan`] — must equal the plan recomputed from `(scenario_runs, shard_index, shard_count)` |
/// | `cells` | one [`PartialCell`] per sweep cell, in sweep order |
/// | `digest` | FNV-1a over the canonical serialization with `digest` zeroed |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialOutcome {
    /// Shard wire-format version.
    pub version: u32,
    /// The scenario's name.
    pub scenario: String,
    /// Digest of the exact scenario the shard ran.
    pub scenario_digest: u64,
    /// The workload that ran.
    pub workload: Workload,
    /// The scenario's whole `runs` budget. Plans are deterministic, so
    /// the merge recomputes every shard's range from this and refuses a
    /// part whose `plan` disagrees — a lone part edited to claim it *is*
    /// the whole campaign cannot silently truncate the merge.
    pub scenario_runs: usize,
    /// This shard's coordinate and run range.
    pub plan: ShardPlan,
    /// Per-cell contributions, in sweep order.
    pub cells: Vec<PartialCell>,
    /// FNV-1a content digest over the canonical serialization of every
    /// field above (with `digest` itself zeroed). Covers the *whole*
    /// part — run streams and accumulators included — so any byte of
    /// on-disk corruption that still parses is caught before it merges.
    pub digest: u64,
}

impl PartialOutcome {
    /// Serializes the part as indented JSON (the `shard run --out` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("partial outcome serializes")
    }

    /// Parses a part from JSON. Parsing does not verify the content
    /// digest; [`merge_shards`]/[`salvage_merge`] call
    /// [`verify_seal`](Self::verify_seal).
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid shard part: {e}"))
    }

    /// Seals the part: recomputes and stores the content digest. Called
    /// by [`run_shard_in`]; tests that deliberately edit a part re-seal
    /// it to reach the deeper consistency checks.
    pub fn seal(&mut self) {
        self.digest = self.fingerprint();
    }

    /// The digest the current fields imply (with `digest` zeroed).
    fn fingerprint(&self) -> u64 {
        let mut zeroed = self.clone();
        zeroed.digest = 0;
        let json = serde_json::to_string(&zeroed).expect("partial outcome serializes");
        fnv1a64(json.as_bytes())
    }

    /// Checks the part's content digest against its fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch.
    pub fn verify_seal(&self) -> Result<(), String> {
        let expected = self.fingerprint();
        if self.digest != expected {
            return Err(format!(
                "part digest {:#018x} does not match its contents ({:#018x}) — the part \
                 file is corrupt or was edited; re-run this shard",
                self.digest, expected
            ));
        }
        Ok(())
    }

    /// Total run indices this shard consumed across its range-sharded
    /// cells (metadata; replicated cells contribute 0, paired cells count
    /// both campaigns).
    pub fn runs_used(&self) -> usize {
        self.cells
            .iter()
            .map(|cell| match &cell.part {
                CellShard::Campaign { slice } => slice.runs_used,
                CellShard::Paired {
                    clean, attacked, ..
                } => clean.runs_used + attacked.runs_used,
                CellShard::Mining { runs_used, .. } => *runs_used,
                CellShard::Replicated { .. } | CellShard::Failed { .. } => 0,
            })
            .sum()
    }

    /// Per-cell coordinator stop indices, in sweep order: `Some(S)` for a
    /// streaming cell truncated by a coordinated stop decision, `None`
    /// otherwise. A service restoring a partially completed coordinated
    /// job pre-seeds a fresh coordinator from a finished part's values so
    /// resumed shards stay consistent with completed ones.
    pub fn cell_stop_indices(&self) -> Vec<Option<usize>> {
        self.cells
            .iter()
            .map(|cell| match &cell.part {
                CellShard::Campaign { slice } => slice.stop_at,
                _ => None,
            })
            .collect()
    }
}

/// How one workload family shards (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardMode {
    /// Streaming measuring-run campaign: split by run range, one slice.
    Streaming,
    /// Paired adversarial campaign: split by run range, two slices.
    Paired,
    /// Replicated mining campaign: split by run range, fork runs.
    MiningRange,
    /// Deterministic single-shot cell: every shard executes it whole.
    Replicated,
}

/// The sharding mode of a scenario's workload.
fn shard_mode(scenario: &Scenario) -> ShardMode {
    match &scenario.workload {
        Workload::TxFlood | Workload::ChurnBurst { .. } | Workload::OverheadProbe => {
            ShardMode::Streaming
        }
        Workload::Adversarial { .. } => ShardMode::Paired,
        Workload::Mining { .. } if scenario.runs > 0 => ShardMode::MiningRange,
        Workload::Mining { .. } | Workload::Partition | Workload::Eclipse { .. } => {
            ShardMode::Replicated
        }
    }
}

/// Where a checkpointing shard run persists its [`Checkpoint`]s: called
/// under the fold lock at every checkpoint boundary. Returning `Err`
/// aborts the shard run (a checkpointer that cannot write durably must
/// not keep burning runs whose progress would be lost). `Send` because
/// the fold evaluates its control hook from worker threads.
pub type CheckpointSink<'s> = dyn FnMut(&Checkpoint) -> Result<(), String> + Send + 's;

/// Receives the live [`RunEvent`] stream of a shard run (see
/// [`ShardRunOptions::observe`]): called synchronously, under the fold
/// lock for run events, so hand work off quickly. `Send` because the fold
/// evaluates its control hook from worker threads.
pub type ShardObserver<'s> = dyn FnMut(&RunEvent) + Send + 's;

/// Execution options of [`run_shard_with`] — threads, checkpointing and
/// resume. [`Default`] reproduces plain [`run_shard_in`] behaviour (no
/// checkpoints, no resume, one worker per core).
pub struct ShardRunOptions<'a> {
    /// Worker-thread count (`None` = one per available core). Output is
    /// byte-identical for any value.
    pub threads: Option<usize>,
    /// Continue from this checkpoint instead of starting at the plan's
    /// first run. Must verify and must match the scenario and shard
    /// coordinate, or the run is refused.
    pub resume: Option<Checkpoint>,
    /// Folds between mid-cell checkpoints (minimum 1). Ignored without a
    /// `sink`.
    pub checkpoint_every: usize,
    /// Receives every sealed [`Checkpoint`]; `None` disables
    /// checkpointing.
    pub sink: Option<&'a mut CheckpointSink<'a>>,
    /// Receives the shard run's live [`RunEvent`] stream. For a one-shard
    /// plan the serialized stream is byte-identical to a
    /// [`ScenarioSession`](crate::ScenarioSession) observer's (the
    /// service's live-streaming contract); on a resumed run it emits the
    /// *continuation* only — replay the persisted prefix first with
    /// [`checkpoint_replay_events`]. Shards with `index > 0` skip
    /// deferred cells, so their streams cover only the cells they ran.
    pub observe: Option<&'a mut ShardObserver<'a>>,
    /// Warms campaign cells through this cache (see
    /// [`WarmCache`](crate::WarmCache)): sweep cells sharing a warm
    /// recipe — and repeated shard runs over one cache — build + warm the
    /// network once and clone thereafter, with byte-identical parts.
    pub warm_cache: Option<&'a WarmCache>,
    /// Coordinates an adaptive stop rule across the fleet (see
    /// [`crate::coordinate`]): the shard submits sealed folded-prefix
    /// envelopes at its cadence boundaries, blocks on the per-cell stop
    /// decision at each cell's end, and truncates its slice to the
    /// broadcast stop index. Required to shard a scenario whose stop rule
    /// is adaptive; must speak for the same scenario digest and shard
    /// count this run was launched with.
    pub coordinator: Option<&'a dyn StopCoordinator>,
}

impl Default for ShardRunOptions<'_> {
    fn default() -> Self {
        ShardRunOptions {
            threads: None,
            resume: None,
            checkpoint_every: 1,
            sink: None,
            observe: None,
            warm_cache: None,
            coordinator: None,
        }
    }
}

/// How a cell's shard run failed: recorded errors ride along in the part
/// (matching `run_batch` semantics), fatal ones abort the whole shard.
enum CellError {
    /// The cell failed at run time — recorded as [`CellShard::Failed`].
    Recorded(String),
    /// Checkpointing failed or resume state was inconsistent — the shard
    /// run must stop rather than produce a part that lies about its
    /// durability.
    Fatal(String),
}

/// Executes one shard of `scenario` against the built-in protocol set
/// with one worker thread per available core.
///
/// # Errors
///
/// Propagates validation errors, and rejects scenarios that declare an
/// adaptive stop rule (a shard cannot evaluate a whole-campaign stop
/// decision); per-cell run-time failures are recorded in the part, not
/// returned.
pub fn run_shard(scenario: &Scenario, spec: ShardSpec) -> Result<PartialOutcome, String> {
    run_shard_in(
        scenario,
        spec,
        &ProtocolRegistry::builtins(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )
}

/// [`run_shard`] with protocols resolved against `registry` and an
/// explicit worker-thread count (output is byte-identical for any value).
///
/// # Errors
///
/// Same conditions as [`run_shard`].
pub fn run_shard_in(
    scenario: &Scenario,
    spec: ShardSpec,
    registry: &ProtocolRegistry,
    threads: usize,
) -> Result<PartialOutcome, String> {
    run_shard_with(
        scenario,
        spec,
        registry,
        ShardRunOptions {
            threads: Some(threads),
            ..ShardRunOptions::default()
        },
    )
}

/// [`run_shard`] with full execution options: worker threads, mid-cell
/// checkpointing through a [`CheckpointSink`], and resume from a prior
/// [`Checkpoint`]. A killed-and-resumed shard produces a part
/// byte-identical to an uninterrupted run at any thread count.
///
/// # Errors
///
/// Everything [`run_shard`] rejects, plus: a resume checkpoint that fails
/// [`Checkpoint::verify`] or does not match this scenario and shard
/// coordinate; a re-warmed snapshot that diverges from the checkpoint's;
/// and a sink write failure (the run aborts — progress past a checkpoint
/// that cannot be persisted would be silently lost on the next crash).
pub fn run_shard_with(
    scenario: &Scenario,
    spec: ShardSpec,
    registry: &ProtocolRegistry,
    options: ShardRunOptions<'_>,
) -> Result<PartialOutcome, String> {
    scenario.validate_in(registry)?;
    let mode = shard_mode(scenario);
    let digest = scenario_digest(scenario);
    if let Some(stop) = &scenario.stop {
        if stop.is_adaptive() && options.coordinator.is_none() {
            return Err(format!(
                "scenario {:?} declares the adaptive stop rule {} — a lone shard cannot stop \
                 adaptively, because a stop decision depends on the folded prefix of all runs \
                 and a shard only ever sees its own range; run every shard with \
                 --coordinate <addr> so a coordinator evaluates the rule across the fleet, or \
                 remove the \"stop\" field (or set it to \"FixedRuns\") to consume the full \
                 budget",
                scenario.name,
                stop.label()
            ));
        }
    }
    let coordination = match options.coordinator {
        None => None,
        Some(coordinator) => {
            let config = coordinator
                .config()
                .map_err(|e| format!("coordinator config: {e}"))?;
            config.verify_seal()?;
            if config.scenario_digest != digest {
                return Err(format!(
                    "coordinator speaks for scenario digest {:#018x}, this shard runs \
                     {digest:#018x} — point every shard and the coordinator at the same \
                     scenario file",
                    config.scenario_digest
                ));
            }
            if config.shard_count != spec.count {
                return Err(format!(
                    "coordinator expects a {}-shard fleet, this shard was launched as {spec}",
                    config.shard_count
                ));
            }
            match &scenario.stop {
                Some(stop) if stop.is_data_driven() => {}
                _ => {
                    return Err(
                        "coordinated sharding requires the scenario to declare a data-driven \
                         adaptive stop rule (CiHalfWidth, VarianceStable)"
                            .to_string(),
                    )
                }
            }
            if mode != ShardMode::Streaming {
                return Err(
                    "coordinated stopping requires a streaming campaign workload (tx-flood, \
                     churn-burst, overhead-probe)"
                        .to_string(),
                );
            }
            Some((coordinator, config.cadence))
        }
    };
    let plan = ShardPlan::for_shard(scenario.runs, spec)?;
    let threads = options
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let checkpoint_every = options.checkpoint_every.max(1);
    let all_cells = scenario.cells();
    let (mut cells, mut current) = match options.resume {
        None => (Vec::new(), None),
        Some(checkpoint) => validate_resume(checkpoint, scenario, digest, plan, &all_cells, mode)?,
    };
    let restored = cells.len();
    let mut sink = options.sink;
    let mut observer = options.observe;
    let planned_runs = if scenario.workload.is_campaign() {
        scenario.runs
    } else {
        0
    };
    for (cell_index, cell) in all_cells.into_iter().enumerate() {
        if cell_index < restored {
            continue; // completed before the checkpoint; restored verbatim
        }
        let resume_cell = if current.as_ref().is_some_and(|p| p.cell_index == cell_index) {
            current.take()
        } else {
            None
        };
        // A resumed cell's `CellStarted` (and run prefix) was already
        // emitted by the run that wrote the checkpoint — the caller
        // replays it via `checkpoint_replay_events`; this run streams the
        // continuation only.
        if resume_cell.is_none() {
            if let Some(observer) = observer.as_mut() {
                observer(&RunEvent::CellStarted {
                    cell: cell_index,
                    label: cell.label.clone(),
                    planned_runs,
                });
            }
        }
        // Like `run_batch`, a cell that fails at run time does not abort
        // the shard: the error rides along and the merge surfaces it. A
        // coordinated shard additionally abandons the cell so peers
        // blocked on its envelopes fail fast instead of hanging.
        let ran = match mode {
            ShardMode::Streaming => run_cell_shard(
                scenario,
                registry,
                threads,
                &cell,
                cell_index,
                plan,
                resume_cell,
                checkpoint_every,
                &mut sink,
                &mut observer,
                options.warm_cache,
                digest,
                &cells,
                coordination,
            ),
            ShardMode::Paired => run_paired_cell_shard(scenario, registry, threads, &cell, plan),
            ShardMode::MiningRange => run_mining_cell_shard(scenario, registry, &cell, plan),
            ShardMode::Replicated => {
                match scenario.run_cell_batch(registry, &cell, Some(threads)) {
                    Ok(report) => Ok(CellShard::Replicated { report }),
                    Err(error) => Err(CellError::Recorded(error)),
                }
            }
        };
        let part = match ran {
            Ok(part) => part,
            Err(CellError::Recorded(error)) => {
                if let Some((coordinator, _)) = coordination {
                    // Best effort — the abandon itself failing must not
                    // mask the cell's own error.
                    let _ = coordinator.abandon(cell_index, &error);
                }
                CellShard::Failed { error }
            }
            Err(CellError::Fatal(error)) => {
                if let Some((coordinator, _)) = coordination {
                    let _ = coordinator.abandon(cell_index, &error);
                }
                return Err(error);
            }
        };
        if let Some(observer) = observer.as_mut() {
            match &part {
                CellShard::Failed { error } => observer(&RunEvent::CellFailed {
                    cell: cell_index,
                    label: cell.label.clone(),
                    error: error.clone(),
                }),
                // The completion event carries a full reconstruction of
                // the cell outcome; only pay for it when someone listens.
                _ => {
                    if let Some(outcome) = shard_cell_outcome(
                        cell.label.clone(),
                        cell.protocol.to_string(),
                        cell.num_nodes,
                        &scenario.workload,
                        &part,
                    ) {
                        let stopped_early = matches!(
                            &part,
                            CellShard::Campaign { slice } if slice.stop_at.is_some()
                        );
                        observer(&RunEvent::CellCompleted {
                            cell: cell_index,
                            report: Box::new(outcome),
                            runs_used: planned_runs,
                            stopped_early,
                        });
                    }
                }
            }
        }
        cells.push(PartialCell {
            label: cell.label,
            protocol: cell.protocol.to_string(),
            num_nodes: cell.num_nodes,
            part,
        });
        // Cell-boundary checkpoint: a crash between cells costs nothing.
        if let Some(sink) = sink.as_mut() {
            let mut boundary = Checkpoint {
                version: SHARD_FORMAT_VERSION,
                scenario: scenario.name.clone(),
                scenario_digest: digest,
                scenario_runs: scenario.runs,
                plan,
                cells_done: cells.clone(),
                current: None,
                digest: 0,
            };
            boundary.seal();
            let _span = bcbpt_obs::span("checkpoint");
            let _timer = crate::obs::checkpoint_write_seconds().start_timer();
            sink(&boundary).map_err(|e| format!("checkpoint write failed: {e}"))?;
        }
    }
    if let Some(observer) = observer.as_mut() {
        let failed_cells = cells
            .iter()
            .filter(|c| matches!(c.part, CellShard::Failed { .. }))
            .count();
        observer(&RunEvent::ScenarioCompleted {
            scenario: scenario.name.clone(),
            cells: cells.len(),
            failed_cells,
        });
    }
    let mut part = PartialOutcome {
        version: SHARD_FORMAT_VERSION,
        scenario: scenario.name.clone(),
        scenario_digest: digest,
        workload: scenario.workload.clone(),
        scenario_runs: scenario.runs,
        plan,
        cells,
        digest: 0,
    };
    part.seal();
    Ok(part)
}

/// Reconstructs the completed [`CellOutcome`] one shard's [`CellShard`]
/// implies — the single-part form of the arithmetic
/// [`merge_campaign_cell`] performs across parts (warmup + window
/// traffic, environment from the snapshot, report shape from the
/// workload). `None` for deferred cells and recorded failures.
fn shard_cell_outcome(
    label: String,
    protocol: String,
    num_nodes: usize,
    workload: &Workload,
    part: &CellShard,
) -> Option<CellOutcome> {
    match part {
        CellShard::Campaign { slice } => {
            let campaign = campaign_from_slice(slice);
            let report = match workload {
                Workload::OverheadProbe => CellReport::Overhead {
                    report: OverheadReport::from_campaign(&campaign),
                },
                _ => CellReport::Campaign { campaign },
            };
            Some(CellOutcome::new(label, protocol, num_nodes, report))
        }
        CellShard::Paired {
            clean,
            attacked,
            infiltration,
            clean_infiltration,
        } => {
            let Workload::Adversarial {
                strategy,
                attackers,
            } = workload
            else {
                return None;
            };
            let report = assemble_report(
                attacked.snapshot.protocol.clone(),
                strategy.label(),
                *attackers,
                *infiltration,
                *clean_infiltration,
                &campaign_from_slice(clean),
                campaign_from_slice(attacked),
            );
            Some(CellOutcome::new(
                label,
                protocol,
                num_nodes,
                CellReport::Adversary { report },
            ))
        }
        CellShard::Mining {
            snapshot,
            relay,
            runs,
            ..
        } => {
            let mut total = snapshot.warmup_traffic.clone();
            for run in runs {
                total.merge(&run.window_traffic);
            }
            let report =
                fork_report_from_runs(snapshot.protocol.clone(), relay.clone(), runs, &total);
            Some(CellOutcome::new(
                label,
                protocol,
                num_nodes,
                CellReport::Forks { report },
            ))
        }
        CellShard::Replicated { report } => {
            Some(CellOutcome::new(label, protocol, num_nodes, report.clone()))
        }
        CellShard::Failed { .. } => None,
    }
}

/// Reconstructs the [`CampaignResult`] one slice implies: total traffic
/// is warmup plus the kept window, environment comes from the snapshot.
fn campaign_from_slice(slice: &CampaignSlice) -> CampaignResult {
    let mut traffic = slice.snapshot.warmup_traffic.clone();
    traffic.merge(&slice.window_traffic);
    CampaignResult {
        protocol: slice.snapshot.protocol.clone(),
        runs: slice.runs.clone(),
        traffic,
        warmup_traffic: slice.snapshot.warmup_traffic.clone(),
        cluster_sizes: slice.snapshot.cluster_sizes.clone(),
        num_nodes: slice.snapshot.num_nodes,
        failures: slice.failures.clone(),
    }
}

/// Reconstructs the [`RunEvent`] prefix a resumed shard run does *not*
/// re-emit: the full per-cell streams of every completed cell in
/// `checkpoint.cells_done`, plus the in-flight cell's `CellStarted` and
/// the run events of its persisted prefix. Feeding these to a subscriber
/// and then continuing with [`ShardRunOptions::observe`] on the resumed
/// run yields a stream byte-identical to an uninterrupted run's — run
/// stats are refolded from the checkpoint's run stream bit-identically.
///
/// # Errors
///
/// Rejects a checkpoint that fails [`Checkpoint::verify`] or does not
/// belong to `scenario` (same checks as resuming through
/// [`run_shard_with`]).
pub fn checkpoint_replay_events(
    scenario: &Scenario,
    checkpoint: &Checkpoint,
) -> Result<Vec<RunEvent>, String> {
    let plan = checkpoint.plan;
    let digest = scenario_digest(scenario);
    let all_cells = scenario.cells();
    let mode = shard_mode(scenario);
    let (cells_done, current) =
        validate_resume(checkpoint.clone(), scenario, digest, plan, &all_cells, mode)?;
    let planned_runs = if scenario.workload.is_campaign() {
        scenario.runs
    } else {
        0
    };
    let mut events = Vec::new();
    for (cell_index, done) in cells_done.iter().enumerate() {
        events.push(RunEvent::CellStarted {
            cell: cell_index,
            label: done.label.clone(),
            planned_runs,
        });
        match &done.part {
            CellShard::Campaign { slice } => {
                // A coordinated stop truncated the kept range; the replay
                // covers only what the part kept.
                let end = slice
                    .stop_at
                    .map_or(plan.run_end, |s| plan.run_end.min(s.max(plan.run_start)));
                replay_run_events(
                    &mut events,
                    cell_index,
                    plan.run_start..end,
                    &slice.runs,
                    &slice.failures,
                );
            }
            CellShard::Failed { error } => {
                events.push(RunEvent::CellFailed {
                    cell: cell_index,
                    label: done.label.clone(),
                    error: error.clone(),
                });
                continue;
            }
            // Paired, mining and replicated cells stream no per-run
            // events — like the session, they bracket with cell events.
            CellShard::Paired { .. } | CellShard::Mining { .. } | CellShard::Replicated { .. } => {}
        }
        if let Some(outcome) = shard_cell_outcome(
            done.label.clone(),
            done.protocol.clone(),
            done.num_nodes,
            &scenario.workload,
            &done.part,
        ) {
            events.push(RunEvent::CellCompleted {
                cell: cell_index,
                report: Box::new(outcome),
                runs_used: planned_runs,
                stopped_early: false,
            });
        }
    }
    if let Some(progress) = &current {
        let label = all_cells
            .get(progress.cell_index)
            .map(|c| c.label.clone())
            .unwrap_or_default();
        events.push(RunEvent::CellStarted {
            cell: progress.cell_index,
            label,
            planned_runs,
        });
        replay_run_events(
            &mut events,
            progress.cell_index,
            plan.run_start..progress.next_run,
            &progress.runs,
            &progress.failures,
        );
    }
    Ok(events)
}

/// Replays the per-run events of one cell's persisted run stream over
/// `range`: folds the pooled-delta accumulator in run-index order (the
/// same fold the live campaign performed, so the emitted [`RunStats`] are
/// bit-identical), with indices absent from both `runs` and `failures`
/// reported as skipped runs — exactly what the live stream emitted.
fn replay_run_events(
    events: &mut Vec<RunEvent>,
    cell: usize,
    range: Range<usize>,
    runs: &[RunResult],
    failures: &[RunFailure],
) {
    let mut deltas = StreamingSummary::new();
    let mut measured = 0usize;
    let mut run_iter = runs.iter().peekable();
    let mut failure_iter = failures.iter().peekable();
    for run_index in range {
        if failure_iter
            .peek()
            .is_some_and(|f| f.run_index == run_index)
        {
            let failure = failure_iter.next().expect("just peeked");
            events.push(RunEvent::RunFailed {
                cell,
                run_index,
                payload: failure.payload.clone(),
            });
            continue;
        }
        let result = if run_iter.peek().is_some_and(|r| r.run_index == run_index) {
            run_iter.next()
        } else {
            None
        };
        if let Some(result) = result {
            deltas.extend(result.deltas_ms.iter().copied());
            measured += 1;
        }
        events.push(RunEvent::RunCompleted {
            cell,
            run_index,
            run_stats: RunStats::folded(result, &deltas, measured),
        });
    }
}

/// Checks a resume [`Checkpoint`] against the scenario and shard
/// coordinate this process was launched with, returning the restored
/// completed cells and in-flight progress.
fn validate_resume(
    checkpoint: Checkpoint,
    scenario: &Scenario,
    digest: u64,
    plan: ShardPlan,
    cells: &[ScenarioCell],
    mode: ShardMode,
) -> Result<(Vec<PartialCell>, Option<CellProgress>), String> {
    checkpoint.verify()?;
    if checkpoint.scenario != scenario.name || checkpoint.scenario_digest != digest {
        return Err(format!(
            "checkpoint belongs to scenario {:?} (digest {:#018x}), not {:?} (digest \
             {:#018x}) — resume with the checkpoint this scenario wrote, or re-run \
             without --resume",
            checkpoint.scenario, checkpoint.scenario_digest, scenario.name, digest
        ));
    }
    if checkpoint.scenario_runs != scenario.runs {
        return Err(format!(
            "checkpoint carries a runs budget of {} but the scenario declares {} — the \
             file is corrupt",
            checkpoint.scenario_runs, scenario.runs
        ));
    }
    if checkpoint.plan != plan {
        return Err(format!(
            "checkpoint was written by shard {}/{} (runs {}..{}) but this process is \
             shard {}/{} (runs {}..{}) — resume each shard from its own checkpoint",
            checkpoint.plan.shard_index,
            checkpoint.plan.shard_count,
            checkpoint.plan.run_start,
            checkpoint.plan.run_end,
            plan.shard_index,
            plan.shard_count,
            plan.run_start,
            plan.run_end
        ));
    }
    if checkpoint.cells_done.len() > cells.len() {
        return Err(format!(
            "checkpoint claims {} completed cell(s) but the scenario sweeps {} — the \
             file is corrupt",
            checkpoint.cells_done.len(),
            cells.len()
        ));
    }
    for (done, expected) in checkpoint.cells_done.iter().zip(cells) {
        if done.label != expected.label {
            return Err(format!(
                "checkpoint cell {:?} does not match the scenario's cell {:?} in sweep \
                 order — the file is corrupt",
                done.label, expected.label
            ));
        }
    }
    if let Some(progress) = &checkpoint.current {
        if mode != ShardMode::Streaming {
            return Err(
                "checkpoint carries mid-cell progress for a workload that only \
                 checkpoints at cell boundaries — the file is corrupt"
                    .to_string(),
            );
        }
        if progress.cell_index != checkpoint.cells_done.len() || progress.cell_index >= cells.len()
        {
            return Err(format!(
                "checkpoint's in-flight cell index {} does not follow its {} completed \
                 cell(s) — the file is corrupt",
                progress.cell_index,
                checkpoint.cells_done.len()
            ));
        }
        if progress.next_run < plan.run_start || progress.next_run > plan.run_end {
            return Err(format!(
                "checkpoint resumes at run {} which is outside the shard's range {}..{}",
                progress.next_run, plan.run_start, plan.run_end
            ));
        }
        progress.snapshot.verify()?;
        for (what, indices) in [
            (
                "runs",
                progress
                    .runs
                    .iter()
                    .map(|r| r.run_index)
                    .collect::<Vec<_>>(),
            ),
            (
                "failures",
                progress.failures.iter().map(|f| f.run_index).collect(),
            ),
        ] {
            let mut prev: Option<usize> = None;
            for index in indices {
                if index < plan.run_start || index >= progress.next_run {
                    return Err(format!(
                        "checkpoint {what} include run {index}, outside the folded prefix \
                         {}..{} — the file is corrupt",
                        plan.run_start, progress.next_run
                    ));
                }
                if prev.is_some_and(|p| index <= p) {
                    return Err(format!(
                        "checkpoint {what} are not in ascending run-index order — the \
                         file is corrupt"
                    ));
                }
                prev = Some(index);
            }
        }
        let mut prev_boundary: Option<usize> = None;
        for boundary in &progress.boundary_traffic {
            if boundary.upto <= plan.run_start || boundary.upto > progress.next_run {
                return Err(format!(
                    "checkpoint freezes window traffic at boundary {}, outside the folded \
                     prefix {}..{} — the file is corrupt",
                    boundary.upto, plan.run_start, progress.next_run
                ));
            }
            if prev_boundary.is_some_and(|p| boundary.upto <= p) {
                return Err(
                    "checkpoint boundary-traffic entries are not in ascending order — the \
                     file is corrupt"
                        .to_string(),
                );
            }
            prev_boundary = Some(boundary.upto);
        }
    }
    Ok((checkpoint.cells_done, checkpoint.current))
}

/// Replays the accumulator fold over a run vector, in run-index order —
/// bit-identical to the incremental fold the campaign performed. Resume
/// recomputes accumulators from the concatenated run stream instead of
/// Welford-merging across the crash boundary (the parallel combine is
/// not bit-exact; replaying the fold is), so an interrupted-and-resumed
/// shard's part equals an uninterrupted shard's byte for byte.
fn fold_accumulators(runs: &[RunResult]) -> (StreamingSummary, StreamingSummary, EcdfBuilder) {
    let mut deltas = StreamingSummary::new();
    let mut run_means = StreamingSummary::new();
    let mut ecdf = EcdfBuilder::new();
    for run in runs {
        deltas.extend(run.deltas_ms.iter().copied());
        if let Some(mean) = crate::experiment::run_mean_delta(run) {
            run_means.record(mean);
        }
        ecdf.extend(run.deltas_ms.iter().copied());
    }
    (deltas, run_means, ecdf)
}

/// Runs one campaign cell's shard range: rebuild + warm the snapshot,
/// execute only the (possibly resumed) remainder of `plan.run_range()`,
/// fold the accumulators in run-index order, and persist a sealed
/// [`Checkpoint`] through `sink` every `checkpoint_every` folds. An
/// empty range still warms the cell — the snapshot digest is this
/// shard's proof that it agrees on the warmed state.
///
/// With `coordination`, the shard additionally submits a sealed
/// folded-prefix envelope at every cadence boundary it crosses, freezes
/// the window traffic at that boundary (so a later stop decision can
/// truncate exactly there), halts as soon as a broadcast stop index is
/// behind it, and blocks on the per-cell decision before finalizing —
/// the returned slice is then the strict prefix `run_start..stop_at` of
/// what an uncoordinated shard would have produced.
#[allow(clippy::too_many_arguments)]
fn run_cell_shard(
    scenario: &Scenario,
    registry: &ProtocolRegistry,
    threads: usize,
    cell: &ScenarioCell,
    cell_index: usize,
    plan: ShardPlan,
    resume: Option<CellProgress>,
    checkpoint_every: usize,
    sink: &mut Option<&mut CheckpointSink<'_>>,
    observer: &mut Option<&mut ShardObserver<'_>>,
    warm: Option<&WarmCache>,
    scenario_digest: u64,
    cells_done: &[PartialCell],
    coordination: Option<(&dyn StopCoordinator, usize)>,
) -> Result<CellShard, CellError> {
    let cfg = scenario.cell_config(cell);
    let (
        prefix_runs,
        prefix_failures,
        prefix_window,
        prefix_boundaries,
        resumed_snapshot,
        start_run,
    ) = match resume {
        Some(progress) => (
            progress.runs,
            progress.failures,
            progress.window_traffic,
            progress.boundary_traffic,
            Some(progress.snapshot),
            progress.next_run,
        ),
        None => (
            Vec::new(),
            Vec::new(),
            MessageStats::new(),
            Vec::new(),
            None,
            plan.run_start,
        ),
    };
    // Coordinated stopping: the decision may already exist (a restarted
    // coordinator presets restored decisions; a resumed shard rejoins
    // late), and a resumed shard must resubmit the envelopes it already
    // crossed — refolded from its persisted prefix, bit-identical to the
    // originals, so resubmission is idempotent.
    let mut known_decision: Option<StopDecision> = None;
    let mut boundary_traffic: Vec<PrefixTraffic> = prefix_boundaries;
    if let Some((coordinator, cadence)) = coordination {
        known_decision = coordinator
            .decision(cell_index)
            .map_err(|e| CellError::Recorded(format!("coordinator: {e}")))?;
        for upto in (plan.run_start + 1)..=start_run {
            if !is_shard_boundary(plan.run_start, plan.run_end, cadence, upto) {
                continue;
            }
            if !boundary_traffic.iter().any(|b| b.upto == upto) {
                return Err(CellError::Fatal(format!(
                    "cell {:?}: the resume checkpoint carries no frozen window traffic for \
                     coordinator boundary {upto} — it was written without --coordinate (or \
                     at a different cadence); delete it and re-run the shard without --resume",
                    cell.label
                )));
            }
            let mut deltas = StreamingSummary::new();
            let mut run_means = StreamingSummary::new();
            let mut measured = 0usize;
            for run in prefix_runs.iter().filter(|r| r.run_index < upto) {
                deltas.extend(run.deltas_ms.iter().copied());
                if let Some(mean) = crate::experiment::run_mean_delta(run) {
                    run_means.record(mean);
                }
                measured += 1;
            }
            let mut envelope = PrefixEnvelope {
                version: COORD_FORMAT_VERSION,
                scenario_digest,
                cell_index,
                shard_index: plan.shard_index,
                shard_count: plan.shard_count,
                upto,
                deltas,
                run_means,
                measured_runs: measured,
                digest: 0,
            };
            envelope.seal();
            match coordinator.submit(envelope) {
                Ok(Some(decision)) => known_decision = Some(decision),
                Ok(None) => {}
                Err(e) => {
                    return Err(CellError::Recorded(format!("coordinator: {e}")));
                }
            }
        }
    }
    // A decision known before any new run clamps the planned range — runs
    // past the stop index would be executed only to be truncated.
    let planned_end = match &known_decision {
        Some(decision) => match decision.stop_at {
            Some(s) => plan.run_end.min(s.max(plan.run_start)),
            None => plan.run_end,
        },
        None => plan.run_end,
    };
    // The warm inspection (main thread, before runs fan out) fills this
    // slot; the control hook (under the fold lock, possibly on a worker)
    // reads it for every mid-cell checkpoint — hence the mutex.
    let snapshot_slot: Mutex<Option<WarmSnapshot>> = Mutex::new(None);
    let mut inspect = |net: &Network| {
        *snapshot_slot.lock().expect("snapshot slot") = Some(WarmSnapshot::capture(&cfg, net));
    };
    // The observer's pooled-prefix accumulator: seeded by refolding the
    // resumed prefix (the fold inside `run_campaign_range` restarts empty
    // at `start_run`, which is correct for the part but would understate
    // the pooled stats of continuation events), then extended run by run —
    // bit-identical to the fold an uninterrupted run performed.
    let mut obs_deltas = StreamingSummary::new();
    let mut obs_measured = 0usize;
    if observer.is_some() {
        for run in &prefix_runs {
            obs_deltas.extend(run.deltas_ms.iter().copied());
            obs_measured += 1;
        }
    }
    // The coordinator's folded-prefix accumulators: seeded by refolding
    // the resumed prefix, then extended run by run in fold order —
    // bit-identical to the fold a peer (or an uninterrupted run) would
    // compute over the same prefix, which is what makes resubmission
    // idempotent and the stop decision arrival-order-invariant.
    let mut coord_deltas = StreamingSummary::new();
    let mut coord_run_means = StreamingSummary::new();
    let mut coord_measured = 0usize;
    if coordination.is_some() {
        for run in &prefix_runs {
            coord_deltas.extend(run.deltas_ms.iter().copied());
            if let Some(mean) = crate::experiment::run_mean_delta(run) {
                coord_run_means.record(mean);
            }
            coord_measured += 1;
        }
    }
    let mut seen_runs: Vec<RunResult> = Vec::new();
    let mut seen_failures: Vec<RunFailure> = Vec::new();
    let mut sink_error: Option<String> = None;
    let mut coord_error: Option<String> = None;
    let mut control = |checkpoint: &RunCheckpoint<'_>| {
        let mut stop = false;
        if let Some(observer) = observer.as_mut() {
            let event = match checkpoint.failure {
                Some(failure) => RunEvent::RunFailed {
                    cell: cell_index,
                    run_index: checkpoint.run_index,
                    payload: failure.payload.clone(),
                },
                None => {
                    if let Some(result) = checkpoint.result {
                        obs_deltas.extend(result.deltas_ms.iter().copied());
                        obs_measured += 1;
                    }
                    RunEvent::RunCompleted {
                        cell: cell_index,
                        run_index: checkpoint.run_index,
                        run_stats: RunStats::folded(checkpoint.result, &obs_deltas, obs_measured),
                    }
                }
            };
            observer(&event);
        }
        if let Some((coordinator, cadence)) = coordination {
            if let Some(result) = checkpoint.result {
                coord_deltas.extend(result.deltas_ms.iter().copied());
                if let Some(mean) = crate::experiment::run_mean_delta(result) {
                    coord_run_means.record(mean);
                }
                coord_measured += 1;
            }
            let upto = checkpoint.run_index + 1;
            if is_shard_boundary(plan.run_start, plan.run_end, cadence, upto) {
                // Freeze the window traffic at this boundary *before* any
                // durable checkpoint of this fold, so a resumed shard can
                // still truncate to a decision that lands exactly here.
                let snapshot_guard = snapshot_slot.lock().expect("snapshot slot");
                let snapshot = snapshot_guard
                    .as_ref()
                    .expect("warm inspection runs before folds");
                let mut window = prefix_window.clone();
                window.merge(&checkpoint.traffic.since(&snapshot.warmup_traffic));
                drop(snapshot_guard);
                boundary_traffic.push(PrefixTraffic {
                    upto,
                    traffic: window,
                });
                if known_decision.is_none() {
                    let mut envelope = PrefixEnvelope {
                        version: COORD_FORMAT_VERSION,
                        scenario_digest,
                        cell_index,
                        shard_index: plan.shard_index,
                        shard_count: plan.shard_count,
                        upto,
                        deltas: coord_deltas,
                        run_means: coord_run_means,
                        measured_runs: coord_measured,
                        digest: 0,
                    };
                    envelope.seal();
                    match coordinator.submit(envelope) {
                        Ok(Some(decision)) => known_decision = Some(decision),
                        Ok(None) => {}
                        Err(e) => {
                            coord_error = Some(e);
                            stop = true;
                        }
                    }
                }
                if let Some(decision) = &known_decision {
                    if decision.stop_at.is_some_and(|s| upto >= s) {
                        stop = true;
                    }
                }
            }
        }
        if sink.is_some() {
            if let Some(result) = checkpoint.result {
                seen_runs.push(result.clone());
            }
            if let Some(failure) = checkpoint.failure {
                seen_failures.push(failure.clone());
            }
            let folded_here = checkpoint.run_index + 1 - start_run;
            if folded_here.is_multiple_of(checkpoint_every) {
                let snapshot_guard = snapshot_slot.lock().expect("snapshot slot");
                let snapshot = snapshot_guard
                    .as_ref()
                    .expect("warm inspection runs before folds");
                let mut runs = prefix_runs.clone();
                runs.extend(seen_runs.iter().cloned());
                let mut failures = prefix_failures.clone();
                failures.extend(seen_failures.iter().cloned());
                let (deltas, run_means, ecdf) = fold_accumulators(&runs);
                let mut window_traffic = prefix_window.clone();
                window_traffic.merge(&checkpoint.traffic.since(&snapshot.warmup_traffic));
                let progress = CellProgress {
                    cell_index,
                    snapshot: snapshot.clone(),
                    runs,
                    failures,
                    window_traffic,
                    deltas,
                    run_means,
                    ecdf,
                    boundary_traffic: boundary_traffic.clone(),
                    next_run: checkpoint.run_index + 1,
                };
                let mut envelope = Checkpoint {
                    version: SHARD_FORMAT_VERSION,
                    scenario: scenario.name.clone(),
                    scenario_digest,
                    scenario_runs: scenario.runs,
                    plan,
                    cells_done: cells_done.to_vec(),
                    current: Some(progress),
                    digest: 0,
                };
                envelope.seal();
                drop(snapshot_guard);
                if let Some(sink) = sink.as_mut() {
                    let _span = bcbpt_obs::span("checkpoint");
                    let _timer = crate::obs::checkpoint_write_seconds().start_timer();
                    if let Err(e) = sink(&envelope) {
                        sink_error = Some(e);
                        stop = true;
                    }
                }
            }
        }
        // `DieAfterRuns` dies here — after the fold (and after any
        // checkpoint for it was persisted), like a real mid-campaign kill.
        #[cfg(feature = "fault-injection")]
        crate::resilience::fault::note_run_folded();
        stop
    };
    let campaign = cfg
        .run_campaign_range(
            registry,
            threads,
            None,
            warm,
            Some(&mut inspect),
            Some(&mut control),
            start_run..planned_end.max(start_run),
        )
        .map_err(CellError::Recorded)?;
    if let Some(error) = sink_error {
        return Err(CellError::Fatal(format!(
            "checkpoint write failed: {error}"
        )));
    }
    if let Some(error) = coord_error {
        return Err(CellError::Recorded(format!("coordinator: {error}")));
    }
    let snapshot = snapshot_slot
        .into_inner()
        .expect("snapshot slot")
        .expect("warm inspection runs before measuring");
    if let Some(resumed) = resumed_snapshot {
        if resumed != snapshot {
            return Err(CellError::Fatal(format!(
                "cell {:?}: the re-warmed snapshot (digest {:#018x}) does not match the \
                 checkpoint's ({:#018x}) — the checkpoint was produced by a different \
                 scenario file, seed or binary; delete it and re-run the shard without \
                 --resume",
                cell.label, snapshot.digest, resumed.digest
            )));
        }
    }
    let mut runs = prefix_runs;
    runs.extend(campaign.runs);
    let mut failures = prefix_failures;
    failures.extend(campaign.failures);
    let mut window_traffic = prefix_window;
    window_traffic.merge(&campaign.traffic.since(&campaign.warmup_traffic));
    let mut runs_used = plan.len();
    let mut stop_at = None;
    if let Some((coordinator, _)) = coordination {
        // The end-of-cell barrier: no shard finalizes a slice until the
        // cell's stop decision exists, so every part in the fleet agrees
        // on the exact prefix the merge reassembles.
        let decision = match known_decision {
            Some(decision) => decision,
            None => {
                let _timer = crate::obs::coord_wait_seconds().start_timer();
                coordinator
                    .wait(cell_index)
                    .map_err(|e| CellError::Recorded(format!("coordinator: {e}")))?
            }
        };
        stop_at = decision.stop_at;
        if let Some(s) = decision.stop_at {
            let effective_end = plan.run_end.min(s.max(plan.run_start));
            if effective_end < plan.run_end {
                crate::obs::coord_runs_saved_total().add((plan.run_end - effective_end) as u64);
            }
            runs.retain(|r| r.run_index < effective_end);
            failures.retain(|f| f.run_index < effective_end);
            if effective_end <= plan.run_start {
                window_traffic = MessageStats::new();
            } else if effective_end < plan.run_end {
                // `s` is a cadence boundary inside this shard's range, so
                // the window traffic was frozen when the fold crossed it
                // (live above, or in the checkpoint a resume restored).
                window_traffic = boundary_traffic
                    .iter()
                    .find(|b| b.upto == effective_end)
                    .map(|b| b.traffic.clone())
                    .ok_or_else(|| {
                        CellError::Fatal(format!(
                            "cell {:?}: no frozen window traffic for stop index \
                             {effective_end} — coordinator cadence disagrees with the \
                             boundaries this shard crossed",
                            cell.label
                        ))
                    })?;
            }
            runs_used = effective_end - plan.run_start;
        }
    }
    let (deltas, run_means, ecdf) = fold_accumulators(&runs);
    Ok(CellShard::Campaign {
        slice: CampaignSlice {
            snapshot,
            runs,
            failures,
            window_traffic,
            deltas,
            run_means,
            ecdf,
            runs_used,
            stop_at,
        },
    })
}

/// Runs one paired adversarial cell's shard range: warm the cell twice
/// from the same recipe — once clean (an inert adversary force, so node
/// count and RNG consumption match the attacked side exactly), once with
/// the live attacker — execute only `plan.run_range()` on each side, and
/// fold each side's accumulators in run-index order. The clean side runs
/// first, matching `adversarial_campaign_in_with_threads` batch order.
fn run_paired_cell_shard(
    scenario: &Scenario,
    registry: &ProtocolRegistry,
    threads: usize,
    cell: &ScenarioCell,
    plan: ShardPlan,
) -> Result<CellShard, CellError> {
    let Workload::Adversarial {
        strategy,
        attackers,
    } = &scenario.workload
    else {
        return Err(CellError::Fatal(
            "paired shard dispatch on a non-adversarial workload".to_string(),
        ));
    };
    let cfg = scenario.cell_config(cell);
    let side = |force: AdversaryForce| -> Result<(CampaignSlice, WarmInfiltration), CellError> {
        let slot: Mutex<Option<(WarmSnapshot, WarmInfiltration)>> = Mutex::new(None);
        let mut inspect = |net: &Network| {
            *slot.lock().expect("snapshot slot") = Some((
                WarmSnapshot::capture(&cfg, net),
                WarmInfiltration::measure(net),
            ));
        };
        let campaign = cfg
            .run_campaign_range(
                registry,
                threads,
                Some(Box::new(force)),
                None,
                Some(&mut inspect),
                None,
                plan.run_range(),
            )
            .map_err(CellError::Recorded)?;
        let (snapshot, infiltration) = slot
            .into_inner()
            .expect("snapshot slot")
            .expect("warm inspection runs before measuring");
        let (deltas, run_means, ecdf) = fold_accumulators(&campaign.runs);
        let window_traffic = campaign.traffic.since(&campaign.warmup_traffic);
        Ok((
            CampaignSlice {
                snapshot,
                runs: campaign.runs,
                failures: campaign.failures,
                window_traffic,
                deltas,
                run_means,
                ecdf,
                runs_used: plan.len(),
                stop_at: None,
            },
            infiltration,
        ))
    };
    let inert =
        AdversaryForce::inert(cfg.net.num_nodes, *attackers).map_err(CellError::Recorded)?;
    let force = AdversaryForce::new(*strategy, cfg.net.num_nodes, *attackers)
        .map_err(CellError::Recorded)?;
    let (clean, clean_infiltration) = side(inert)?;
    let (attacked, infiltration) = side(force)?;
    Ok(CellShard::Paired {
        clean,
        attacked,
        infiltration,
        clean_infiltration,
    })
}

/// Runs one mining cell's shard range: warm the cell, capture the
/// snapshot, and mine only `plan.run_range()` — each mining run reseeds
/// from `(seed, run_index)` against a clone of the warmed base, so a
/// range is exactly the corresponding slice of the whole campaign.
fn run_mining_cell_shard(
    scenario: &Scenario,
    registry: &ProtocolRegistry,
    cell: &ScenarioCell,
    plan: ShardPlan,
) -> Result<CellShard, CellError> {
    let Workload::Mining {
        block_interval_ms,
        duration_ms,
    } = &scenario.workload
    else {
        return Err(CellError::Fatal(
            "mining shard dispatch on a non-mining workload".to_string(),
        ));
    };
    let cfg = scenario.cell_config(cell);
    let (net, warmup_traffic) = mining_warm(registry, &cfg).map_err(CellError::Recorded)?;
    let snapshot = WarmSnapshot::capture(&cfg, &net);
    let runs = mine_range(
        &net,
        &warmup_traffic,
        &cfg,
        *block_interval_ms,
        *duration_ms,
        plan.run_range(),
    );
    Ok(CellShard::Mining {
        snapshot,
        relay: cfg.relay.as_ref().map(|r| r.to_string()),
        runs,
        runs_used: plan.len(),
    })
}

/// Merges shard parts, **in shard order**, into the [`ScenarioOutcome`]
/// the unsharded [`Scenario::run_batch`] would have produced —
/// byte-identically. Consumes the parts (run vectors are moved, not
/// cloned — at paper scale they dominate the part's size); callers that
/// need to keep a part clone it first.
///
/// # Errors
///
/// Rejects: an empty part list; wire-format version mismatches; parts
/// from different scenarios (name or [`scenario_digest`]) or disagreeing
/// on the `runs` budget; inconsistent shard counts; parts passed out of
/// shard order, missing or duplicated; a part whose plan differs from
/// the one recomputed from `(scenario_runs, shard_index, shard_count)` —
/// so an edited lone part cannot pose as a whole campaign; per-cell
/// warm-snapshot mismatches (shards that warmed to different states);
/// runs outside their shard's range or out of order; and accumulator
/// shards whose counts disagree with the concatenated run stream.
pub fn merge_shards(mut parts: Vec<PartialOutcome>) -> Result<ScenarioOutcome, String> {
    let first = parts
        .first()
        .ok_or_else(|| "no shard parts to merge".to_string())?;
    let count = first.plan.shard_count;
    let scenario = first.scenario.clone();
    let scenario_digest = first.scenario_digest;
    let scenario_runs = first.scenario_runs;
    let workload = first.workload.clone();
    let cell_count = first.cells.len();
    if parts.len() != count {
        return Err(format!(
            "incomplete merge: the plan has {count} shard(s) but {} part(s) were given",
            parts.len()
        ));
    }
    let verify_span = bcbpt_obs::span("merge_verify");
    let verify_timer = std::time::Instant::now();
    for (position, part) in parts.iter().enumerate() {
        if part.version != SHARD_FORMAT_VERSION {
            return Err(format!(
                "part for shard {} has wire-format version {} but this binary speaks {}",
                part.plan.shard_index, part.version, SHARD_FORMAT_VERSION
            ));
        }
        part.verify_seal()
            .map_err(|e| format!("part for shard {}: {e}", part.plan.shard_index))?;
        if part.scenario != scenario || part.scenario_digest != scenario_digest {
            return Err(format!(
                "parts mix different scenarios: {scenario:?} (digest {scenario_digest:#018x}) \
                 vs {:?} (digest {:#018x})",
                part.scenario, part.scenario_digest
            ));
        }
        if part.plan.shard_count != count {
            return Err(format!(
                "parts disagree on the shard count: {} vs {count}",
                part.plan.shard_count
            ));
        }
        if part.scenario_runs != scenario_runs {
            return Err(format!(
                "parts disagree on the scenario's runs budget: {} vs {scenario_runs}",
                part.scenario_runs
            ));
        }
        if part.plan.shard_index != position {
            return Err(format!(
                "shard parts out of order: position {position} holds shard {}/{count} — pass \
                 the part files in ascending shard order (part-0, part-1, …)",
                part.plan.shard_index
            ));
        }
        // Plans are a pure function of (runs, index, count): recompute and
        // compare, so the union of ranges provably covers 0..runs and a
        // part edited to claim a different slice (or to pose as the whole
        // campaign) is rejected rather than silently truncating the merge.
        let expected = ShardPlan::for_shard(scenario_runs, ShardSpec::new(position, count)?)?;
        if part.plan != expected {
            return Err(format!(
                "shard {position} carries plan {}..{} but a {count}-shard split of \
                 {scenario_runs} run(s) assigns it {}..{} — the part was edited or produced \
                 by an incompatible planner",
                part.plan.run_start, part.plan.run_end, expected.run_start, expected.run_end
            ));
        }
        if part.cells.len() != cell_count {
            return Err(format!(
                "shard {position} carries {} cell(s), shard 0 carries {cell_count} — \
                 different sweeps?",
                part.cells.len(),
            ));
        }
    }
    crate::obs::merge_verify_seconds().observe(verify_timer.elapsed());
    drop(verify_span);
    let mut cells = Vec::with_capacity(cell_count);
    for cell_index in 0..cell_count {
        cells.push(merge_cell(&mut parts, cell_index, &workload)?);
    }
    Ok(ScenarioOutcome::new(scenario, workload, cells))
}

/// Merges one cell across all parts (see [`merge_shards`] for the
/// checks), taking ownership of the cell's shard data.
fn merge_cell(
    parts: &mut [PartialOutcome],
    cell_index: usize,
    workload: &Workload,
) -> Result<CellOutcome, String> {
    let head = &parts[0].cells[cell_index];
    let label = head.label.clone();
    let protocol = head.protocol.clone();
    let num_nodes = head.num_nodes;
    for part in &parts[1..] {
        let cell = &part.cells[cell_index];
        if cell.label != label || cell.protocol != protocol {
            return Err(format!(
                "cell {cell_index} differs across shards: {label:?} vs {:?}",
                cell.label
            ));
        }
    }
    // A failed cell on any shard fails the merged cell, with the
    // lowest-shard error — deterministic runs fail identically on every
    // shard, so this matches what `run_batch` records.
    if let Some(error) = parts.iter().find_map(|p| match &p.cells[cell_index].part {
        CellShard::Failed { error } => Some(error.clone()),
        _ => None,
    }) {
        return Ok(CellOutcome::new(
            label,
            protocol,
            num_nodes,
            CellReport::Failed { error },
        ));
    }
    // Take ownership of every shard's contribution (run vectors are
    // moved, not cloned — each cell is visited exactly once).
    let shards: Vec<(ShardPlan, CellShard)> = parts
        .iter_mut()
        .map(|part| {
            (
                part.plan,
                std::mem::replace(
                    &mut part.cells[cell_index].part,
                    CellShard::Failed {
                        error: "merged".to_string(),
                    },
                ),
            )
        })
        .collect();
    match shards[0].1 {
        CellShard::Campaign { .. } => {
            merge_campaign_cell(shards, workload, label, protocol, num_nodes)
        }
        CellShard::Paired { .. } => merge_paired_cell(shards, workload, label, protocol, num_nodes),
        CellShard::Mining { .. } => merge_mining_cell(shards, label, protocol, num_nodes),
        CellShard::Replicated { .. } => merge_replicated_cell(shards, label, protocol, num_nodes),
        CellShard::Failed { .. } => unreachable!("failed cells are handled above"),
    }
}

/// Folds the campaign slices of one cell, shard by shard in shard order —
/// the cross-process continuation of the in-process `CampaignFold`: run
/// vectors concatenate (moved, not cloned) in run-index order, integer
/// traffic counters add, and the accumulator shards merge in the same
/// order they folded. Returns the reassembled campaign plus the stop
/// index every slice agreed on (`None` when uncoordinated).
fn merge_slices(
    shards: Vec<(ShardPlan, CampaignSlice)>,
    label: &str,
) -> Result<(CampaignResult, Option<usize>), String> {
    let mut snapshot: Option<WarmSnapshot> = None;
    let mut stop_at: Option<Option<usize>> = None;
    let mut runs: Vec<RunResult> = Vec::new();
    let mut failures: Vec<RunFailure> = Vec::new();
    let mut window_sum = MessageStats::new();
    let mut merged_deltas = StreamingSummary::new();
    let mut merged_run_means = StreamingSummary::new();
    let mut merged_ecdf = EcdfBuilder::new();
    for (plan, slice) in shards {
        let CampaignSlice {
            snapshot: shard_snapshot,
            runs: shard_runs,
            failures: shard_failures,
            window_traffic,
            deltas,
            run_means,
            ecdf,
            runs_used,
            stop_at: shard_stop,
        } = slice;
        shard_snapshot
            .verify()
            .map_err(|e| format!("cell {label:?}, shard {}: {e}", plan.shard_index))?;
        match &snapshot {
            None => snapshot = Some(shard_snapshot),
            Some(reference) => {
                if *reference != shard_snapshot {
                    return Err(format!(
                        "cell {label:?}: shard {} warmed to a different snapshot (digest \
                         {:#018x} vs {:#018x}) — were the parts produced by different \
                         scenario files, seeds or binaries?",
                        plan.shard_index, shard_snapshot.digest, reference.digest
                    ));
                }
            }
        }
        // A coordinated stop is one decision for the whole cell: every
        // slice must carry the same index, and no slice may keep a run
        // at or past it — otherwise the merge would not be the strict
        // prefix the decision promised.
        match &stop_at {
            None => stop_at = Some(shard_stop),
            Some(reference) => {
                if *reference != shard_stop {
                    return Err(format!(
                        "cell {label:?}: shards disagree on the coordinated stop index \
                         ({reference:?} vs {shard_stop:?} on shard {}) — the parts were \
                         produced under different stop decisions",
                        plan.shard_index
                    ));
                }
            }
        }
        let range = plan.run_range();
        let effective_end = match shard_stop {
            Some(s) => plan.run_end.min(s.max(plan.run_start)),
            None => plan.run_end,
        };
        if runs_used != effective_end - plan.run_start {
            return Err(format!(
                "cell {label:?}: shard {} claims {runs_used} run(s) used but its effective \
                 range {}..{effective_end} holds {} — the part file is inconsistent",
                plan.shard_index,
                plan.run_start,
                effective_end - plan.run_start
            ));
        }
        let mut prev: Option<usize> = None;
        for run in shard_runs.iter() {
            if !range.contains(&run.run_index) {
                return Err(format!(
                    "cell {label:?}: shard {} reports run {} outside its range {}..{}",
                    plan.shard_index, run.run_index, range.start, range.end
                ));
            }
            if run.run_index >= effective_end {
                return Err(format!(
                    "cell {label:?}: shard {} reports run {} at or past the coordinated \
                     stop index {effective_end}",
                    plan.shard_index, run.run_index
                ));
            }
            if prev.is_some_and(|p| run.run_index <= p) {
                return Err(format!(
                    "cell {label:?}: shard {} runs are not in ascending run-index order",
                    plan.shard_index
                ));
            }
            prev = Some(run.run_index);
        }
        let mut prev_failure: Option<usize> = None;
        for failure in shard_failures.iter() {
            if !range.contains(&failure.run_index) || failure.run_index >= effective_end {
                return Err(format!(
                    "cell {label:?}: shard {} reports a failure at run {} outside its \
                     range {}..{}",
                    plan.shard_index,
                    failure.run_index,
                    range.start,
                    range.end.min(effective_end)
                ));
            }
            if prev_failure.is_some_and(|p| failure.run_index <= p) {
                return Err(format!(
                    "cell {label:?}: shard {} failures are not in ascending run-index order",
                    plan.shard_index
                ));
            }
            prev_failure = Some(failure.run_index);
        }
        runs.extend(shard_runs);
        failures.extend(shard_failures);
        window_sum.merge(&window_traffic);
        merged_deltas.merge(&deltas);
        merged_run_means.merge(&run_means);
        merged_ecdf.merge(&ecdf);
    }
    let snapshot = snapshot.expect("at least one part exists");
    let stop_at = stop_at.expect("at least one part exists");
    // Accumulator shards must agree with the run stream they rode along
    // with: the pooled counts are exactly the finite Δt samples of the
    // concatenated runs, and the per-run-mean accumulator holds one
    // observation per run that harvested any finite delta.
    let finite_deltas: usize = runs
        .iter()
        .map(|r| r.deltas_ms.iter().filter(|d| d.is_finite()).count())
        .sum();
    if merged_ecdf.len() != finite_deltas || merged_deltas.count() != finite_deltas as u64 {
        return Err(format!(
            "cell {label:?}: accumulator shards disagree with the run stream ({} ECDF samples, \
             {} summary observations, {finite_deltas} finite run deltas) — the part files \
             are inconsistent",
            merged_ecdf.len(),
            merged_deltas.count()
        ));
    }
    let measured_runs = runs
        .iter()
        .filter(|r| r.deltas_ms.iter().any(|d| d.is_finite()))
        .count();
    if merged_run_means.count() != measured_runs as u64 {
        return Err(format!(
            "cell {label:?}: per-run-mean accumulator carries {} observation(s) but the run \
             stream holds {measured_runs} measuring run(s) — the part files are inconsistent",
            merged_run_means.count()
        ));
    }
    let mut traffic = snapshot.warmup_traffic.clone();
    traffic.merge(&window_sum);
    let campaign = CampaignResult {
        protocol: snapshot.protocol.clone(),
        runs,
        traffic,
        warmup_traffic: snapshot.warmup_traffic.clone(),
        cluster_sizes: snapshot.cluster_sizes.clone(),
        num_nodes: snapshot.num_nodes,
        failures,
    };
    Ok((campaign, stop_at))
}

/// Merges one streaming campaign cell: unwrap each shard's slice, fold
/// via [`merge_slices`], and shape the report after the workload.
fn merge_campaign_cell(
    shards: Vec<(ShardPlan, CellShard)>,
    workload: &Workload,
    label: String,
    protocol: String,
    num_nodes: usize,
) -> Result<CellOutcome, String> {
    let slices = shards
        .into_iter()
        .map(|(plan, part)| match part {
            CellShard::Campaign { slice } => Ok((plan, slice)),
            _ => Err(format!(
                "cell {label:?}: shard {} carries a non-campaign part for a campaign cell",
                plan.shard_index
            )),
        })
        .collect::<Result<Vec<_>, String>>()?;
    let (campaign, _stop_at) = merge_slices(slices, &label)?;
    let report = match workload {
        Workload::OverheadProbe => CellReport::Overhead {
            report: OverheadReport::from_campaign(&campaign),
        },
        _ => CellReport::Campaign { campaign },
    };
    Ok(CellOutcome::new(label, protocol, num_nodes, report))
}

/// Merges one paired adversarial cell: fold the clean and attacked sides
/// independently via [`merge_slices`], cross-check the warm-time
/// infiltration measurements (pure warm-state functions — every shard
/// must have measured the same), then assemble the report through the
/// same arithmetic the batch path uses.
fn merge_paired_cell(
    shards: Vec<(ShardPlan, CellShard)>,
    workload: &Workload,
    label: String,
    protocol: String,
    num_nodes: usize,
) -> Result<CellOutcome, String> {
    let Workload::Adversarial {
        strategy,
        attackers,
    } = workload
    else {
        return Err(format!(
            "cell {label:?}: paired shard parts under a non-adversarial workload"
        ));
    };
    let mut cleans = Vec::with_capacity(shards.len());
    let mut attackeds = Vec::with_capacity(shards.len());
    let mut reference: Option<(WarmInfiltration, WarmInfiltration)> = None;
    for (plan, part) in shards {
        let CellShard::Paired {
            clean,
            attacked,
            infiltration,
            clean_infiltration,
        } = part
        else {
            return Err(format!(
                "cell {label:?}: shard {} carries a non-paired part for an adversarial cell",
                plan.shard_index
            ));
        };
        match &reference {
            None => reference = Some((infiltration, clean_infiltration)),
            Some((i, c)) => {
                if *i != infiltration || *c != clean_infiltration {
                    return Err(format!(
                        "cell {label:?}: shard {} measured a different warm-time \
                         infiltration — were the parts produced by different scenario \
                         files, seeds or binaries?",
                        plan.shard_index
                    ));
                }
            }
        }
        cleans.push((plan, clean));
        attackeds.push((plan, attacked));
    }
    let (infiltration, clean_infiltration) = reference.expect("at least one part exists");
    let (clean, _) = merge_slices(cleans, &label)?;
    let (attacked, _) = merge_slices(attackeds, &label)?;
    let report = assemble_report(
        attacked.protocol.clone(),
        strategy.label(),
        *attackers,
        infiltration,
        clean_infiltration,
        &clean,
        attacked,
    );
    Ok(CellOutcome::new(
        label,
        protocol,
        num_nodes,
        CellReport::Adversary { report },
    ))
}

/// Merges one range-sharded mining cell: verify every shard mined off the
/// same snapshot with the same relay, concatenate the fork runs (each
/// range covers its plan exactly — mining runs cannot fail), and total
/// the traffic as warmup plus every run's window, exactly like the batch
/// path.
fn merge_mining_cell(
    shards: Vec<(ShardPlan, CellShard)>,
    label: String,
    protocol: String,
    num_nodes: usize,
) -> Result<CellOutcome, String> {
    let mut snapshot: Option<WarmSnapshot> = None;
    let mut relay: Option<Option<String>> = None;
    let mut all_runs: Vec<ForkRun> = Vec::new();
    for (plan, part) in shards {
        let CellShard::Mining {
            snapshot: shard_snapshot,
            relay: shard_relay,
            runs,
            runs_used,
        } = part
        else {
            return Err(format!(
                "cell {label:?}: shard {} carries a non-mining part for a mining cell",
                plan.shard_index
            ));
        };
        shard_snapshot
            .verify()
            .map_err(|e| format!("cell {label:?}, shard {}: {e}", plan.shard_index))?;
        match &snapshot {
            None => snapshot = Some(shard_snapshot),
            Some(reference) => {
                if *reference != shard_snapshot {
                    return Err(format!(
                        "cell {label:?}: shard {} warmed to a different snapshot (digest \
                         {:#018x} vs {:#018x}) — were the parts produced by different \
                         scenario files, seeds or binaries?",
                        plan.shard_index, shard_snapshot.digest, reference.digest
                    ));
                }
            }
        }
        match &relay {
            None => relay = Some(shard_relay),
            Some(reference) => {
                if *reference != shard_relay {
                    return Err(format!(
                        "cell {label:?}: shards disagree on the relay strategy \
                         ({reference:?} vs {shard_relay:?} on shard {})",
                        plan.shard_index
                    ));
                }
            }
        }
        // Mining runs cannot fail, so a slice must cover its range
        // exactly: one run per planned index, in order.
        if runs_used != plan.len() || runs.len() != plan.len() {
            return Err(format!(
                "cell {label:?}: shard {} carries {} mining run(s) for a range of {} — \
                 the part file is inconsistent",
                plan.shard_index,
                runs.len(),
                plan.len()
            ));
        }
        for (offset, run) in runs.iter().enumerate() {
            if run.run_index != plan.run_start + offset {
                return Err(format!(
                    "cell {label:?}: shard {} mining run at position {offset} carries \
                     run index {} (expected {})",
                    plan.shard_index,
                    run.run_index,
                    plan.run_start + offset
                ));
            }
        }
        all_runs.extend(runs);
    }
    let snapshot = snapshot.expect("at least one part exists");
    let relay = relay.expect("at least one part exists");
    let mut total = snapshot.warmup_traffic.clone();
    for run in &all_runs {
        total.merge(&run.window_traffic);
    }
    let report = fork_report_from_runs(snapshot.protocol.clone(), relay, &all_runs, &total);
    Ok(CellOutcome::new(
        label,
        protocol,
        num_nodes,
        CellReport::Forks { report },
    ))
}

/// Merges one replicated cell: every shard executed the deterministic
/// cell whole, so all reports must be byte-identical (compared on their
/// canonical serialization — NaN-safe) and shard 0's is kept.
fn merge_replicated_cell(
    shards: Vec<(ShardPlan, CellShard)>,
    label: String,
    protocol: String,
    num_nodes: usize,
) -> Result<CellOutcome, String> {
    let mut kept: Option<(CellReport, String)> = None;
    for (plan, part) in shards {
        let CellShard::Replicated { report } = part else {
            return Err(format!(
                "cell {label:?}: shard {} carries a non-replicated part for a \
                 single-shot cell",
                plan.shard_index
            ));
        };
        let json = serde_json::to_string(&report).expect("cell report serializes");
        match &kept {
            None => kept = Some((report, json)),
            Some((_, reference)) => {
                if *reference != json {
                    return Err(format!(
                        "cell {label:?}: shard {} replicated a different result than \
                         shard 0 — the cell is not deterministic across the parts \
                         (different scenario files, seeds or binaries?)",
                        plan.shard_index
                    ));
                }
            }
        }
    }
    let (report, _) = kept.expect("at least one part exists");
    Ok(CellOutcome::new(label, protocol, num_nodes, report))
}

/// Salvaging [`merge_shards`]: instead of aborting on the first bad part,
/// quarantine every part that is unreadable, unparseable, seal-broken,
/// version-mismatched, or inconsistent with the consensus of the rest —
/// then merge what survives. When every shard index still has a valid
/// part, the merged outcome is returned (identical to what
/// [`merge_shards`] over clean parts produces); otherwise the report
/// carries a [`RepairPlan`] naming the exact `--shard i/N` re-runs that
/// complete the set.
///
/// `sources` pairs each part with its origin label (file path); `Err`
/// entries carry the read/parse failure the caller hit and are
/// quarantined with that reason. `scenario_path` is echoed into the
/// repair commands.
///
/// # Errors
///
/// Only when nothing can be salvaged at all: an empty source list, every
/// part quarantined, or the surviving set failing a deep merge check
/// that quarantining cannot attribute to one part.
pub fn salvage_merge(
    sources: Vec<(String, Result<PartialOutcome, String>)>,
    scenario_path: &str,
) -> Result<SalvageReport, String> {
    if sources.is_empty() {
        return Err("no shard parts to salvage".to_string());
    }
    let mut quarantined: Vec<QuarantinedPart> = Vec::new();
    let mut survivors: Vec<(String, PartialOutcome)> = Vec::new();
    for (source, result) in sources {
        let part = match result {
            Ok(part) => part,
            Err(reason) => {
                quarantined.push(QuarantinedPart {
                    source,
                    shard_index: None,
                    reason,
                });
                continue;
            }
        };
        if part.version != SHARD_FORMAT_VERSION {
            quarantined.push(QuarantinedPart {
                source,
                shard_index: Some(part.plan.shard_index),
                reason: format!(
                    "wire-format version {} (this binary speaks {SHARD_FORMAT_VERSION})",
                    part.version
                ),
            });
            continue;
        }
        if let Err(reason) = part.verify_seal() {
            quarantined.push(QuarantinedPart {
                source,
                shard_index: Some(part.plan.shard_index),
                reason,
            });
            continue;
        }
        survivors.push((source, part));
    }
    // Consensus on the campaign identity: (scenario, digest, runs budget,
    // shard count, cell count). Majority wins; ties break toward the
    // earliest source, so a lone healthy part still anchors the merge.
    type IdentityKey = (String, u64, usize, usize, usize);
    let identity = |p: &PartialOutcome| -> IdentityKey {
        (
            p.scenario.clone(),
            p.scenario_digest,
            p.scenario_runs,
            p.plan.shard_count,
            p.cells.len(),
        )
    };
    let consensus = {
        let mut tally: Vec<(IdentityKey, usize, usize)> = Vec::new();
        for (position, (_, part)) in survivors.iter().enumerate() {
            let key = identity(part);
            match tally.iter_mut().find(|(k, _, _)| *k == key) {
                Some((_, count, _)) => *count += 1,
                None => tally.push((key, 1, position)),
            }
        }
        tally
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)))
            .map(|(key, _, _)| key)
    };
    let Some(consensus) = consensus else {
        return Err(format!(
            "salvage merge: every part was quarantined, nothing to merge:\n{}",
            quarantine_lines(&quarantined)
        ));
    };
    let (scenario, _, scenario_runs, shard_count, _) = consensus.clone();
    survivors.retain(|(source, part)| {
        if identity(part) == consensus {
            return true;
        }
        quarantined.push(QuarantinedPart {
            source: source.clone(),
            shard_index: Some(part.plan.shard_index),
            reason: format!(
                "disagrees with the majority of parts on the campaign identity \
                 (scenario {:?}, digest {:#018x}, {} run(s), {} shard(s), {} cell(s))",
                part.scenario,
                part.scenario_digest,
                part.scenario_runs,
                part.plan.shard_count,
                part.cells.len()
            ),
        });
        false
    });
    // Plan sanity and duplicate shard indices (first in source order wins).
    let mut seen_indices: Vec<usize> = Vec::new();
    survivors.retain(|(source, part)| {
        let index = part.plan.shard_index;
        let expected = ShardSpec::new(index, shard_count)
            .and_then(|spec| ShardPlan::for_shard(scenario_runs, spec));
        match expected {
            Ok(expected) if expected == part.plan => {}
            Ok(expected) => {
                quarantined.push(QuarantinedPart {
                    source: source.clone(),
                    shard_index: Some(index),
                    reason: format!(
                        "carries plan {}..{} but a {shard_count}-shard split of \
                         {scenario_runs} run(s) assigns shard {index} {}..{}",
                        part.plan.run_start,
                        part.plan.run_end,
                        expected.run_start,
                        expected.run_end
                    ),
                });
                return false;
            }
            Err(reason) => {
                quarantined.push(QuarantinedPart {
                    source: source.clone(),
                    shard_index: Some(index),
                    reason,
                });
                return false;
            }
        }
        if seen_indices.contains(&index) {
            quarantined.push(QuarantinedPart {
                source: source.clone(),
                shard_index: Some(index),
                reason: format!(
                    "duplicate part for shard {index} (an earlier source already covers it)"
                ),
            });
            return false;
        }
        seen_indices.push(index);
        true
    });
    // Per-cell warm-snapshot consensus: a part that warmed to a different
    // state (different binary or diverged replay) is quarantined instead
    // of failing the whole merge.
    let cell_count = survivors.first().map_or(0, |(_, p)| p.cells.len());
    for cell_index in 0..cell_count {
        let digest_of = |part: &PartialOutcome| match &part.cells[cell_index].part {
            CellShard::Campaign { slice } => Some(slice.snapshot.digest),
            CellShard::Paired { attacked, .. } => Some(attacked.snapshot.digest),
            CellShard::Mining { snapshot, .. } => Some(snapshot.digest),
            CellShard::Replicated { .. } | CellShard::Failed { .. } => None,
        };
        let mut tally: Vec<(u64, usize, usize)> = Vec::new();
        for (position, (_, part)) in survivors.iter().enumerate() {
            if let Some(digest) = digest_of(part) {
                match tally.iter_mut().find(|(d, _, _)| *d == digest) {
                    Some((_, count, _)) => *count += 1,
                    None => tally.push((digest, 1, position)),
                }
            }
        }
        let Some((majority, _, _)) = tally
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)))
        else {
            continue; // no campaign carriers for this cell
        };
        survivors.retain(|(source, part)| {
            let Some(digest) = digest_of(part) else {
                return true;
            };
            if digest == majority {
                return true;
            }
            quarantined.push(QuarantinedPart {
                source: source.clone(),
                shard_index: Some(part.plan.shard_index),
                reason: format!(
                    "cell {cell_index} warmed to snapshot digest {digest:#018x}, but the \
                     majority of parts agree on {majority:#018x}"
                ),
            });
            false
        });
    }
    if survivors.is_empty() {
        return Err(format!(
            "salvage merge: every part was quarantined, nothing to merge:\n{}",
            quarantine_lines(&quarantined)
        ));
    }
    let missing_shards: Vec<usize> = (0..shard_count)
        .filter(|i| !survivors.iter().any(|(_, p)| p.plan.shard_index == *i))
        .collect();
    if missing_shards.is_empty() {
        let mut parts: Vec<PartialOutcome> = survivors.into_iter().map(|(_, p)| p).collect();
        parts.sort_by_key(|p| p.plan.shard_index);
        let outcome = merge_shards(parts)
            .map_err(|e| format!("salvage merge: the surviving parts still do not merge: {e}"))?;
        return Ok(SalvageReport {
            outcome: Some(outcome),
            quarantined,
            repair: None,
        });
    }
    let commands = missing_shards
        .iter()
        .map(|&index| {
            let out = quarantined
                .iter()
                .find(|q| q.shard_index == Some(index))
                .map_or_else(|| format!("part-{index}.json"), |q| q.source.clone());
            format!("scenario shard run {scenario_path} --shard {index}/{shard_count} --out {out}")
        })
        .collect();
    Ok(SalvageReport {
        outcome: None,
        quarantined: quarantined.clone(),
        repair: Some(RepairPlan {
            scenario,
            shard_count,
            quarantined,
            missing_shards,
            commands,
        }),
    })
}

/// One indented line per quarantined part, for error messages.
fn quarantine_lines(quarantined: &[QuarantinedPart]) -> String {
    quarantined
        .iter()
        .map(|q| format!("  {}: {}", q.source, q.reason))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::StopRule;
    use bcbpt_cluster::Protocol;

    fn tiny(runs: usize) -> Scenario {
        let mut base = ExperimentConfig::quick(Protocol::Bitcoin);
        base.net.num_nodes = 60;
        base.warmup_ms = 1_000.0;
        base.window_ms = 15_000.0;
        base.runs = runs;
        Scenario::from_experiment("tiny-shard", &base, Workload::TxFlood)
    }

    fn shard_all(scenario: &Scenario, count: usize) -> Vec<PartialOutcome> {
        (0..count)
            .map(|i| run_shard(scenario, ShardSpec::new(i, count).unwrap()).unwrap())
            .collect()
    }

    #[test]
    fn shard_spec_parses_and_rejects() {
        assert_eq!(
            ShardSpec::parse("2/5").unwrap(),
            ShardSpec::new(2, 5).unwrap()
        );
        assert_eq!(ShardSpec::parse("0/1").unwrap().to_string(), "0/1");
        for bad in ["", "3", "a/b", "1/0", "5/5", "7/3"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn plans_are_disjoint_contiguous_and_balanced() {
        for (runs, count) in [(10, 3), (4, 5), (0, 2), (1000, 7), (5, 1)] {
            let plans = ShardPlan::plan(runs, count).unwrap();
            assert_eq!(plans.len(), count);
            let mut covered = 0;
            for (i, plan) in plans.iter().enumerate() {
                assert_eq!(plan.shard_index, i);
                assert_eq!(plan.shard_count, count);
                assert_eq!(plan.run_start, covered, "ranges must be contiguous");
                covered = plan.run_end;
                assert!(plan.len() <= runs / count + 1, "balanced to within one");
                assert_eq!(
                    plan,
                    &ShardPlan::for_shard(runs, ShardSpec::new(i, count).unwrap()).unwrap()
                );
            }
            assert_eq!(covered, runs, "ranges must cover 0..runs exactly");
        }
        assert!(ShardPlan::plan(10, 0).is_err());
    }

    #[test]
    fn single_shard_merge_matches_batch() {
        let scenario = tiny(4);
        let parts = shard_all(&scenario, 1);
        assert_eq!(parts[0].runs_used(), 4);
        let merged = merge_shards(parts).unwrap();
        assert_eq!(merged, scenario.run_batch().unwrap());
    }

    #[test]
    fn multi_shard_merge_matches_batch_and_preserves_ecdf_order() {
        let scenario = tiny(5);
        let batch = scenario.run_batch().unwrap();
        for count in [2usize, 3, 5] {
            let parts = shard_all(&scenario, count);
            let merged = merge_shards(parts).unwrap();
            assert_eq!(merged, batch, "{count} shards diverged from batch");
            // The cached ECDF accessor of the merged outcome must agree
            // bitwise with the batch recompute (sample order preserved
            // across every shard boundary).
            assert_eq!(
                merged.cells[0].delta_ecdf(),
                batch.cells[0].delta_ecdf(),
                "{count} shards reordered the sample stream"
            );
        }
    }

    #[test]
    fn more_shards_than_runs_produces_empty_shards_that_still_merge() {
        let scenario = tiny(3);
        let parts = shard_all(&scenario, 5);
        assert!(parts[3].plan.is_empty() && parts[4].plan.is_empty());
        let CellShard::Campaign { slice } = &parts[4].cells[0].part else {
            panic!("empty shard still carries a campaign part");
        };
        assert!(slice.runs.is_empty());
        assert!(slice.ecdf.is_empty());
        let merged = merge_shards(parts).unwrap();
        assert_eq!(merged, scenario.run_batch().unwrap());
    }

    #[test]
    fn out_of_order_parts_are_rejected() {
        let scenario = tiny(4);
        let mut parts = shard_all(&scenario, 2);
        parts.swap(0, 1);
        let err = merge_shards(parts).unwrap_err();
        assert!(err.contains("out of order"), "{err}");
    }

    #[test]
    fn missing_and_duplicated_parts_are_rejected() {
        let scenario = tiny(4);
        let parts = shard_all(&scenario, 3);
        let err = merge_shards(parts[..2].to_vec()).unwrap_err();
        assert!(err.contains("incomplete"), "{err}");
        let duplicated = vec![parts[0].clone(), parts[0].clone(), parts[2].clone()];
        let err = merge_shards(duplicated).unwrap_err();
        assert!(err.contains("out of order"), "{err}");
        assert!(merge_shards(Vec::new())
            .unwrap_err()
            .contains("no shard parts"));
    }

    #[test]
    fn mixed_scenarios_are_rejected() {
        let a = tiny(4);
        let mut b = tiny(4);
        b.seed += 1;
        let parts = vec![
            run_shard(&a, ShardSpec::new(0, 2).unwrap()).unwrap(),
            run_shard(&b, ShardSpec::new(1, 2).unwrap()).unwrap(),
        ];
        let err = merge_shards(parts).unwrap_err();
        assert!(err.contains("different scenarios"), "{err}");
    }

    #[test]
    fn tampered_parts_are_rejected_by_the_digest() {
        let scenario = tiny(4);
        // Any edit that is not re-sealed trips the whole-part seal first.
        let mut parts = shard_all(&scenario, 2);
        if let CellShard::Campaign { slice } = &mut parts[1].cells[0].part {
            slice.snapshot.online += 1;
        }
        let err = merge_shards(parts).unwrap_err();
        assert!(err.contains("part digest"), "{err}");

        // Re-sealing the edited part gets past the outer seal; the warm
        // snapshot's own digest still catches the tamper.
        let mut parts = shard_all(&scenario, 2);
        if let CellShard::Campaign { slice } = &mut parts[1].cells[0].part {
            slice.snapshot.online += 1;
        }
        parts[1].seal();
        let err = merge_shards(parts).unwrap_err();
        assert!(err.contains("warm snapshot digest"), "{err}");

        // A version from the future is rejected before anything merges.
        let mut parts = shard_all(&scenario, 2);
        parts[1].version += 1;
        parts[1].seal();
        let err = merge_shards(parts).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn a_lone_part_cannot_pose_as_the_whole_campaign() {
        // Editing part 0's plan to claim shard_count == 1 must not let a
        // half-campaign merge pass as complete: the merge recomputes the
        // plan from the carried runs budget and refuses the mismatch.
        let scenario = tiny(4);
        let parts = shard_all(&scenario, 2);
        let mut lone = parts[0].clone();
        lone.plan.shard_count = 1;
        lone.seal();
        let err = merge_shards(vec![lone]).unwrap_err();
        assert!(err.contains("assigns it"), "{err}");

        // Parts that disagree on the runs budget are caught before any
        // cell merges.
        let mut parts = shard_all(&scenario, 2);
        parts[1].scenario_runs = 2;
        parts[1].seal();
        let err = merge_shards(parts).unwrap_err();
        assert!(err.contains("runs budget"), "{err}");
    }

    #[test]
    fn accumulator_shards_inconsistent_with_the_run_stream_are_rejected() {
        // The warm-snapshot digest does not cover the accumulators; their
        // guard is the count cross-check against the concatenated runs.
        let scenario = tiny(4);
        let mut parts = shard_all(&scenario, 2);
        if let CellShard::Campaign { slice } = &mut parts[1].cells[0].part {
            slice.deltas.record(1.0);
            slice.ecdf.push(1.0);
        }
        parts[1].seal();
        let err = merge_shards(parts).unwrap_err();
        assert!(err.contains("disagree with the run stream"), "{err}");

        let mut parts = shard_all(&scenario, 2);
        if let CellShard::Campaign { slice } = &mut parts[0].cells[0].part {
            slice.run_means.record(1.0);
        }
        parts[0].seal();
        let err = merge_shards(parts).unwrap_err();
        assert!(err.contains("per-run-mean accumulator"), "{err}");
    }

    #[test]
    fn adaptive_stop_rules_are_rejected_for_sharded_runs() {
        let mut scenario = tiny(8);
        scenario.stop = Some(StopRule::CiHalfWidth {
            level: 0.95,
            rel_width: 0.1,
            min_runs: 2,
        });
        let err = run_shard(&scenario, ShardSpec::new(0, 2).unwrap()).unwrap_err();
        assert!(err.contains("adaptive"), "{err}");
        assert!(err.contains("ci(95%"), "{err}");
        // The non-adaptive FixedRuns declaration shards fine.
        scenario.stop = Some(StopRule::FixedRuns);
        run_shard(&scenario, ShardSpec::new(0, 2).unwrap()).unwrap();
    }

    #[test]
    fn partial_outcomes_serde_round_trip() {
        let scenario = tiny(3);
        for part in shard_all(&scenario, 2) {
            let back = PartialOutcome::from_json(&part.to_json()).unwrap();
            assert_eq!(back, part);
        }
        assert!(PartialOutcome::from_json("{]").is_err());
    }

    #[test]
    fn threads_do_not_change_a_shard() {
        let scenario = tiny(6);
        let registry = ProtocolRegistry::builtins();
        let spec = ShardSpec::new(1, 2).unwrap();
        let serial = run_shard_in(&scenario, spec, &registry, 1).unwrap();
        for threads in [3usize, 8] {
            let pooled = run_shard_in(&scenario, spec, &registry, threads).unwrap();
            assert_eq!(pooled, serial, "{threads} threads changed the part");
        }
    }

    #[test]
    fn scenario_digest_is_content_sensitive() {
        let a = tiny(4);
        assert_eq!(scenario_digest(&a), scenario_digest(&a.clone()));
        let mut reseeded = a.clone();
        reseeded.seed ^= 1;
        assert_ne!(scenario_digest(&a), scenario_digest(&reseeded));
        let mut renamed = a.clone();
        renamed.name = "other-name".to_string();
        assert_ne!(scenario_digest(&a), scenario_digest(&renamed));
    }

    fn session_events(scenario: &Scenario) -> Vec<RunEvent> {
        let events = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&events);
        scenario
            .session()
            .observe_fn(move |event: &RunEvent| sink.lock().unwrap().push(event.clone()))
            .block()
            .unwrap();
        std::sync::Arc::try_unwrap(events)
            .unwrap()
            .into_inner()
            .unwrap()
    }

    #[test]
    fn one_shard_observer_stream_matches_the_session() {
        // The service's live-streaming contract: a 1-shard run observed
        // through ShardRunOptions::observe emits exactly the event stream
        // a ScenarioSession observer sees — same events, same order, same
        // folded stats.
        let scenario = tiny(4);
        let reference = session_events(&scenario);
        let mut observed: Vec<RunEvent> = Vec::new();
        let mut observe = |event: &RunEvent| observed.push(event.clone());
        let part = run_shard_with(
            &scenario,
            ShardSpec::new(0, 1).unwrap(),
            &ProtocolRegistry::builtins(),
            ShardRunOptions {
                observe: Some(&mut observe),
                ..ShardRunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(observed, reference);
        // Observing changed nothing about the part itself.
        assert_eq!(
            part,
            run_shard(&scenario, ShardSpec::new(0, 1).unwrap()).unwrap()
        );
    }

    #[test]
    fn observed_warm_cached_shard_is_byte_identical() {
        let scenario = tiny(3);
        let spec = ShardSpec::new(0, 1).unwrap();
        let plain = run_shard(&scenario, spec).unwrap();
        let cache = WarmCache::new(2);
        let registry = ProtocolRegistry::builtins();
        for expected_hits in [0u64, 1] {
            let part = run_shard_with(
                &scenario,
                spec,
                &registry,
                ShardRunOptions {
                    warm_cache: Some(&cache),
                    ..ShardRunOptions::default()
                },
            )
            .unwrap();
            assert_eq!(part, plain);
            assert_eq!(cache.hits(), expected_hits);
        }
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn checkpoint_replay_plus_continuation_matches_uninterrupted_stream() {
        // Kill-and-resume must not tear the event stream: replaying the
        // checkpoint's prefix and observing the resumed run concatenates
        // to the exact uninterrupted stream (pooled stats included, which
        // the resumed fold alone could not know).
        let scenario = tiny(5);
        let spec = ShardSpec::new(0, 1).unwrap();
        let registry = ProtocolRegistry::builtins();
        let reference = session_events(&scenario);
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let mut sink = |checkpoint: &Checkpoint| -> Result<(), String> {
            checkpoints.push(checkpoint.clone());
            Ok(())
        };
        let uninterrupted = run_shard_with(
            &scenario,
            spec,
            &registry,
            ShardRunOptions {
                sink: Some(&mut sink),
                ..ShardRunOptions::default()
            },
        )
        .unwrap();
        // Resume from a mid-cell checkpoint (2 runs folded).
        let resume_from = checkpoints
            .iter()
            .find(|c| c.current.as_ref().is_some_and(|p| p.next_run == 2))
            .expect("mid-cell checkpoint at run 2")
            .clone();
        let mut stream = checkpoint_replay_events(&scenario, &resume_from).unwrap();
        let mut observe = |event: &RunEvent| stream.push(event.clone());
        let resumed = run_shard_with(
            &scenario,
            spec,
            &registry,
            ShardRunOptions {
                resume: Some(resume_from),
                observe: Some(&mut observe),
                ..ShardRunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(resumed, uninterrupted);
        assert_eq!(stream, reference);
    }

    #[test]
    fn checkpoint_replay_rejects_a_foreign_checkpoint() {
        let scenario = tiny(4);
        let registry = ProtocolRegistry::builtins();
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let mut sink = |checkpoint: &Checkpoint| -> Result<(), String> {
            checkpoints.push(checkpoint.clone());
            Ok(())
        };
        run_shard_with(
            &scenario,
            ShardSpec::new(0, 1).unwrap(),
            &registry,
            ShardRunOptions {
                sink: Some(&mut sink),
                ..ShardRunOptions::default()
            },
        )
        .unwrap();
        let mut other = tiny(4);
        other.seed += 1;
        let err = checkpoint_replay_events(&other, &checkpoints[0]).unwrap_err();
        assert!(err.contains("digest"), "{err}");
    }
}
