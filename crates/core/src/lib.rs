//! # bcbpt-core — experiment harness for the BCBPT reproduction
//!
//! Everything needed to regenerate the evaluation of *Proximity Awareness
//! Approach to Enhance Propagation Delay on the Bitcoin Peer-to-Peer
//! Network* (ICDCS 2017):
//!
//! * [`Scenario`]/[`ScenarioOutcome`] — the declarative experiment API:
//!   campaigns as serializable data (workload + protocol spec + sweep),
//!   run by the single `scenario` driver binary.
//! * [`ScenarioSession`]/[`RunEvent`]/[`StopRule`] — the streaming
//!   execution API: typed events reach [`Observer`]s as runs fold, and
//!   adaptive stop rules end a cell as soon as its confidence interval is
//!   tight instead of burning the fixed `runs` budget.
//! * [`ExperimentConfig`]/[`CampaignResult`] — the measuring-node
//!   methodology (Fig. 2, Eq. 5), repeated over many runs (§V.B).
//! * [`fig3`]/[`fig4`] — the paper's two result figures.
//! * [`threshold_sweep`] — extension: fine-grained `Dth` sweep with cluster
//!   structure.
//! * [`validate_delays`] — simulator validation against a reference
//!   propagation-delay shape (§V.A).
//! * [`overhead_table`] — the ping-overhead evaluation the paper defers to
//!   future work (§IV.A).
//! * [`eclipse_table`]/[`partition_table`] — the security evaluations the
//!   paper defers to future work (§V.C).
//! * [`adversarial_campaign`]/[`AdversaryReport`] — behavioural attackers
//!   (ping spoofing, relay delaying, withholding) run in-loop through whole
//!   campaigns, vs a clean baseline.
//! * [`run_shard`]/[`merge_shards`] — cross-host campaign sharding:
//!   disjoint run ranges execute as independent processes against the
//!   same deterministically-replayed warm snapshot, and the serialized
//!   [`PartialOutcome`]s merge back byte-identically to the unsharded
//!   batch run.
//! * [`RunFailure`]/[`Checkpoint`]/[`salvage_merge`]/[`FaultPlan`] — the
//!   failure story: panicking runs fold as structured data, killed shards
//!   resume from digest-sealed checkpoints byte-identically, corrupt
//!   parts are quarantined with a machine-readable [`RepairPlan`], and a
//!   deterministic fault-injection harness (`fault-injection` feature)
//!   drives every recovery path in CI.
//! * [`fork_table`] — extension: proof-of-work on top of each relay
//!   protocol, measuring the stale-block rate the paper's motivation ties
//!   to double-spend risk (§I).
//! * [`degree_variance_table`] — the §V.C claim that Bitcoin's delay
//!   variance grows with connection count while BCBPT's stays flat.
//!
//! # Examples
//!
//! Regenerate a CI-scale Fig. 3:
//!
//! ```no_run
//! use bcbpt_cluster::Protocol;
//! use bcbpt_core::{fig3, ExperimentConfig};
//!
//! let base = ExperimentConfig::quick(Protocol::Bitcoin);
//! let bundle = fig3(&base)?;
//! println!("{}", bundle.render());
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod adversary;
mod attacks;
pub mod coordinate;
mod degree;
mod experiment;
mod figures;
mod forks;
pub mod obs;
mod overhead;
mod resilience;
mod scenario;
mod session;
mod shard;
mod validation;
mod warm;

pub use adversary::{
    adversarial_campaign, adversarial_campaign_in, adversarial_campaign_in_with_threads,
    AdversaryReport, ADVERSARY_COLUMNS,
};
pub use attacks::{
    eclipse_exposure, eclipse_exposure_in, eclipse_table, partition_resilience,
    partition_resilience_in, partition_table, EclipseReport, PartitionReport,
};
/// Re-exported so scenario authors can name attacker strategies without a
/// direct `bcbpt-adversary` dependency.
pub use bcbpt_adversary::AdversaryStrategy;
/// Re-exported so scenario authors can name relay strategies without a
/// direct `bcbpt-net` dependency.
pub use bcbpt_net::RelaySpec;
pub use coordinate::{
    CoordinatorConfig, LocalCoordinator, PrefixEnvelope, StopCoordinator, StopDecision,
    COORD_FORMAT_VERSION,
};
pub use degree::{degree_variance, degree_variance_table, DegreeVariance};
pub use experiment::{cluster_sizes, CampaignResult, ExperimentConfig, RunResult};
pub use figures::{fig3, fig4, threshold_sweep, FigureBundle};
pub use forks::{fork_experiment, fork_experiment_in, fork_table, ForkReport, RelayForkExt};
pub use overhead::{overhead_table, OverheadReport};
#[cfg(feature = "fault-injection")]
pub use resilience::fault;
pub use resilience::{
    CellProgress, Checkpoint, FaultPlan, PrefixTraffic, QuarantinedPart, RepairPlan, RunFailure,
    SalvageReport,
};
pub use scenario::{
    CellOutcome, CellReport, Scenario, ScenarioCell, ScenarioOutcome, Sweep, Workload,
};
pub use session::{ChannelObserver, Observer, RunEvent, RunStats, ScenarioSession, StopRule};
pub use shard::{
    checkpoint_replay_events, merge_shards, run_shard, run_shard_in, run_shard_with, salvage_merge,
    scenario_digest, CampaignSlice, CellShard, CheckpointSink, PartialCell, PartialOutcome,
    ShardObserver, ShardPlan, ShardRunOptions, ShardSpec, WarmSnapshot, SHARD_FORMAT_VERSION,
};
pub use validation::{
    reference_samples, validate_delays, ValidationReport, KS_ACCEPT, REFERENCE_SIGMA,
};
pub use warm::{warm_recipe_digest, WarmCache};
