//! Property-based tests for statistics invariants.

use bcbpt_stats::{Ecdf, Histogram, Summary};
use proptest::prelude::*;

fn finite_samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6f64..1.0e6, 1..max_len)
}

proptest! {
    /// ECDF is monotone non-decreasing and bounded in [0, 1].
    #[test]
    fn ecdf_is_monotone(samples in finite_samples(200)) {
        let cdf = Ecdf::from_samples(samples.iter().copied()).unwrap();
        let mut prev = 0.0;
        for &(x, y) in cdf.curve(64).iter() {
            prop_assert!((0.0..=1.0).contains(&y), "F({x}) = {y} out of range");
            prop_assert!(y >= prev, "CDF decreased");
            prev = y;
        }
        prop_assert_eq!(cdf.eval(cdf.max()), 1.0);
        prop_assert_eq!(cdf.eval(cdf.min() - 1.0), 0.0);
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_are_monotone(samples in finite_samples(200)) {
        let cdf = Ecdf::from_samples(samples.iter().copied()).unwrap();
        let mut prev = cdf.min();
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = cdf.quantile(q);
            prop_assert!(v >= prev, "quantile decreased at q={q}");
            prop_assert!(v >= cdf.min() && v <= cdf.max());
            prev = v;
        }
    }

    /// KS distance is a pseudo-metric: symmetric, zero on identical samples,
    /// bounded by 1, and satisfies the triangle inequality.
    #[test]
    fn ks_is_a_pseudmetric(
        a in finite_samples(60),
        b in finite_samples(60),
        c in finite_samples(60)
    ) {
        let ca = Ecdf::from_samples(a.iter().copied()).unwrap();
        let cb = Ecdf::from_samples(b.iter().copied()).unwrap();
        let cc = Ecdf::from_samples(c.iter().copied()).unwrap();
        let dab = ca.ks_distance(&cb);
        let dba = cb.ks_distance(&ca);
        prop_assert!((dab - dba).abs() < 1e-12, "asymmetric: {dab} vs {dba}");
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert!(ca.ks_distance(&ca) == 0.0);
        let dac = ca.ks_distance(&cc);
        let dcb = cc.ks_distance(&cb);
        prop_assert!(dab <= dac + dcb + 1e-12, "triangle violated");
    }

    /// Summary mean is bracketed by min/max, variance is non-negative.
    #[test]
    fn summary_brackets(samples in finite_samples(300)) {
        let s: Summary = samples.iter().copied().collect();
        prop_assert_eq!(s.count(), samples.len() as u64);
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.sample_variance() >= 0.0);
        prop_assert!(s.population_variance() <= s.sample_variance() + 1e-9 || s.count() < 2);
    }

    /// Merging summaries in any split matches the sequential result.
    #[test]
    fn summary_merge_associates(samples in finite_samples(300), split in 0usize..300) {
        let split = split.min(samples.len());
        let seq: Summary = samples.iter().copied().collect();
        let mut left: Summary = samples[..split].iter().copied().collect();
        let right: Summary = samples[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), seq.count());
        prop_assert!((left.mean() - seq.mean()).abs() < 1e-6);
        let scale = seq.sample_variance().abs().max(1.0);
        prop_assert!((left.sample_variance() - seq.sample_variance()).abs() / scale < 1e-6);
    }

    /// Histogram conserves observations: bins + underflow + overflow = n.
    #[test]
    fn histogram_conserves_mass(samples in finite_samples(300)) {
        let mut h = Histogram::new(-1000.0, 1000.0, 37).unwrap();
        h.extend(samples.iter().copied());
        prop_assert_eq!(h.total(), samples.len() as u64);
        let binned: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), samples.len() as u64);
    }

    /// ECDF mean/variance agree with Summary on the same data.
    #[test]
    fn ecdf_and_summary_agree(samples in finite_samples(200)) {
        let cdf = Ecdf::from_samples(samples.iter().copied()).unwrap();
        let s: Summary = samples.iter().copied().collect();
        prop_assert!((cdf.mean() - s.mean()).abs() < 1e-6);
        let scale = s.sample_variance().abs().max(1.0);
        prop_assert!((cdf.sample_variance() - s.sample_variance()).abs() / scale < 1e-6);
        prop_assert_eq!(cdf.min(), s.min());
        prop_assert_eq!(cdf.max(), s.max());
    }
}
