//! Bootstrap confidence intervals.
//!
//! The paper reports single point estimates per protocol; a reproduction
//! should also say how sure it is. [`bootstrap_ci`] resamples a statistic
//! with replacement (percentile method) so campaign summaries can carry
//! uncertainty, e.g. "BCBPT variance 15.1k, 95% CI [12.0k, 18.5k]".

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The statistic on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// The confidence level used (e.g. `0.95`).
    pub level: f64,
}

impl ConfidenceInterval {
    /// `true` when `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Resamples `samples` with replacement `iterations` times, evaluates
/// `statistic` on each resample, and returns the `level` percentile
/// interval. Deterministic in `seed`.
///
/// # Examples
///
/// ```
/// use bcbpt_stats::bootstrap_ci;
///
/// let data: Vec<f64> = (0..200).map(|i| f64::from(i % 50)).collect();
/// let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
/// let ci = bootstrap_ci(&data, mean, 500, 0.95, 7).unwrap();
/// assert!(ci.contains(ci.estimate));
/// assert!(ci.width() < 10.0);
/// ```
///
/// # Errors
///
/// Returns an error when `samples` is empty, `iterations == 0`, or `level`
/// is outside `(0, 1)`.
pub fn bootstrap_ci<F>(
    samples: &[f64],
    statistic: F,
    iterations: usize,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval, BootstrapError>
where
    F: Fn(&[f64]) -> f64,
{
    if samples.is_empty() {
        return Err(BootstrapError::EmptySample);
    }
    if iterations == 0 {
        return Err(BootstrapError::NoIterations);
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(BootstrapError::BadLevel(level));
    }
    let estimate = statistic(samples);
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(iterations);
    let mut resample = vec![0.0; samples.len()];
    for _ in 0..iterations {
        for slot in resample.iter_mut() {
            *slot = samples[rng.gen_range(0..samples.len())];
        }
        let s = statistic(&resample);
        if s.is_finite() {
            stats.push(s);
        }
    }
    if stats.is_empty() {
        return Err(BootstrapError::DegenerateStatistic);
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((stats.len() as f64) * alpha).floor() as usize;
    let hi_idx = (((stats.len() as f64) * (1.0 - alpha)).ceil() as usize).min(stats.len()) - 1;
    Ok(ConfidenceInterval {
        estimate,
        lo: stats[lo_idx.min(stats.len() - 1)],
        hi: stats[hi_idx],
        level,
    })
}

/// Errors from [`bootstrap_ci`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BootstrapError {
    /// No input samples.
    EmptySample,
    /// Zero bootstrap iterations requested.
    NoIterations,
    /// Confidence level outside `(0, 1)`.
    BadLevel(f64),
    /// The statistic returned no finite values on any resample.
    DegenerateStatistic,
}

impl core::fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BootstrapError::EmptySample => f.write_str("bootstrap requires a non-empty sample"),
            BootstrapError::NoIterations => f.write_str("bootstrap requires >= 1 iteration"),
            BootstrapError::BadLevel(l) => {
                write!(f, "confidence level {l} outside (0, 1)")
            }
            BootstrapError::DegenerateStatistic => {
                f.write_str("statistic produced no finite values")
            }
        }
    }
}

impl std::error::Error for BootstrapError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn ci_brackets_the_truth_for_gaussianish_data() {
        // Deterministic pseudo-noise around 10.
        let data: Vec<f64> = (0..500)
            .map(|i| 10.0 + ((i as f64 * 0.7).sin() + (i as f64 * 1.3).cos()))
            .collect();
        let ci = bootstrap_ci(&data, mean, 1000, 0.95, 1).unwrap();
        assert!(ci.contains(mean(&data)));
        assert!(ci.contains(ci.estimate));
        assert!((ci.estimate - 10.0).abs() < 0.5);
        assert!(ci.lo < ci.hi);
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let data: Vec<f64> = (0..300).map(|i| (i % 37) as f64).collect();
        let narrow = bootstrap_ci(&data, mean, 800, 0.80, 2).unwrap();
        let wide = bootstrap_ci(&data, mean, 800, 0.99, 2).unwrap();
        assert!(wide.width() > narrow.width());
    }

    #[test]
    fn deterministic_in_seed() {
        let data: Vec<f64> = (0..100).map(f64::from).collect();
        let a = bootstrap_ci(&data, mean, 200, 0.9, 5).unwrap();
        let b = bootstrap_ci(&data, mean, 200, 0.9, 5).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&data, mean, 200, 0.9, 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn constant_data_collapses() {
        let data = vec![4.0; 50];
        let ci = bootstrap_ci(&data, mean, 100, 0.95, 3).unwrap();
        assert_eq!(ci.lo, 4.0);
        assert_eq!(ci.hi, 4.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn variance_statistic_works() {
        let data: Vec<f64> = (0..400).map(|i| ((i * 31) % 100) as f64).collect();
        let variance = |xs: &[f64]| {
            let m = mean(xs);
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
        };
        let ci = bootstrap_ci(&data, variance, 500, 0.95, 4).unwrap();
        assert!(ci.lo > 0.0);
        assert!(ci.contains(ci.estimate));
    }

    #[test]
    fn input_validation() {
        assert_eq!(
            bootstrap_ci(&[], mean, 10, 0.9, 1),
            Err(BootstrapError::EmptySample)
        );
        assert_eq!(
            bootstrap_ci(&[1.0], mean, 0, 0.9, 1),
            Err(BootstrapError::NoIterations)
        );
        assert_eq!(
            bootstrap_ci(&[1.0], mean, 10, 1.0, 1),
            Err(BootstrapError::BadLevel(1.0))
        );
        assert_eq!(
            bootstrap_ci(&[1.0], |_| f64::NAN, 10, 0.9, 1),
            Err(BootstrapError::DegenerateStatistic)
        );
        for e in [
            BootstrapError::EmptySample,
            BootstrapError::NoIterations,
            BootstrapError::BadLevel(2.0),
            BootstrapError::DegenerateStatistic,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
