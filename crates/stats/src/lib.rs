//! # bcbpt-stats — statistics for the BCBPT reproduction
//!
//! Small, dependency-light statistics toolkit used throughout the
//! reproduction of *Proximity Awareness Approach to Enhance Propagation
//! Delay on the Bitcoin Peer-to-Peer Network* (ICDCS 2017):
//!
//! * [`Summary`] — streaming mean/variance/min/max (Welford), mergeable for
//!   parallel campaigns.
//! * [`Ecdf`] — empirical CDFs with quantiles, curve extraction (for the
//!   paper's Fig. 3/Fig. 4 delay distributions) and the two-sample
//!   Kolmogorov–Smirnov distance (simulator validation, §V.A).
//! * [`Histogram`] — fixed-bin histograms with under/overflow accounting.
//! * [`Figure`]/[`Series`]/[`StatTable`] — plain-text rendering of the
//!   regenerated figures and tables.
//! * [`bootstrap_ci`] — percentile-bootstrap confidence intervals so
//!   campaign summaries carry uncertainty.
//! * [`StreamingSummary`]/[`EcdfBuilder`] — mergeable streaming
//!   accumulators that fold per-run harvests incrementally (with a cheap
//!   normal-approximation CI on the mean), powering live sessions and
//!   adaptive stop rules.
//!
//! # Examples
//!
//! ```
//! use bcbpt_stats::{Ecdf, Summary};
//!
//! let delays = [12.0, 48.0, 33.0, 90.0, 41.0];
//! let summary: Summary = delays.iter().copied().collect();
//! let cdf = Ecdf::from_samples(delays)?;
//! assert!(summary.mean() > 0.0);
//! assert!(cdf.quantile(0.9) <= cdf.max());
//! # Ok::<(), bcbpt_stats::BuildEcdfError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bootstrap;
mod ecdf;
mod histogram;
mod streaming;
mod summary;
mod table;

pub use bootstrap::{bootstrap_ci, BootstrapError, ConfidenceInterval};
pub use ecdf::{BuildEcdfError, Ecdf};
pub use histogram::{BuildHistogramError, Histogram, MergeMismatch};
pub use streaming::{normal_quantile, EcdfBuilder, StreamingSummary};
pub use summary::Summary;
pub use table::{Figure, Series, StatTable};
