//! Empirical cumulative distribution functions.
//!
//! The paper's figures (Fig. 3, Fig. 4) plot the *distribution* of the
//! per-connection transaction arrival deltas `Δt(m,n)`; [`Ecdf`] is the data
//! structure those figures are generated from.

use core::fmt;
use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
///
/// Stores the sorted sample; evaluation is a binary search. Construction is
/// `O(n log n)` once, queries are `O(log n)`.
///
/// # Examples
///
/// ```
/// use bcbpt_stats::Ecdf;
///
/// let cdf = Ecdf::from_samples([10.0, 20.0, 30.0, 40.0]).unwrap();
/// assert_eq!(cdf.eval(25.0), 0.5);
/// assert_eq!(cdf.quantile(0.5), 20.0);
/// assert_eq!(cdf.median(), 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

/// Error returned when an [`Ecdf`] cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildEcdfError {
    /// The sample was empty after dropping non-finite values.
    Empty,
}

impl fmt::Display for BuildEcdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildEcdfError::Empty => f.write_str("sample contains no finite values"),
        }
    }
}

impl std::error::Error for BuildEcdfError {}

impl Ecdf {
    /// Builds an ECDF from samples, silently dropping non-finite values.
    ///
    /// # Errors
    ///
    /// Returns [`BuildEcdfError::Empty`] when no finite samples remain.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Result<Self, BuildEcdfError> {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        if sorted.is_empty() {
            return Err(BuildEcdfError::Empty);
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ok(Ecdf { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `false` always: an `Ecdf` is never empty by construction. Provided for
    /// API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted sample.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates `F(x)` — the fraction of samples `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), using the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let rank = (q * n as f64).ceil() as usize;
        self.sorted[rank.clamp(1, n) - 1]
    }

    /// The median (`quantile(0.5)`).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Arithmetic mean of the sample.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Sample variance of the sample (n − 1 denominator).
    pub fn sample_variance(&self) -> f64 {
        let n = self.sorted.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        self.sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    }

    /// Evaluates the CDF at evenly spaced points between `min` and `max`,
    /// returning `(x, F(x))` pairs — the series a figure plots.
    ///
    /// # Panics
    ///
    /// Panics when `points < 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two curve points");
        let lo = self.min();
        let hi = self.max();
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Two-sample Kolmogorov–Smirnov statistic: the maximum vertical distance
    /// between this CDF and `other`.
    ///
    /// Used to validate the simulator against the reference propagation-delay
    /// distribution (paper §V.A).
    ///
    /// # Examples
    ///
    /// ```
    /// use bcbpt_stats::Ecdf;
    ///
    /// let a = Ecdf::from_samples((0..100).map(f64::from)).unwrap();
    /// let b = Ecdf::from_samples((0..100).map(f64::from)).unwrap();
    /// assert_eq!(a.ks_distance(&b), 0.0);
    /// ```
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in &self.sorted {
            d = d.max((self.eval(x) - other.eval(x)).abs());
            // Also check just below x (left limit of the step).
            let fx_self = self.eval(x - f64::EPSILON * x.abs().max(1.0));
            let fx_other = other.eval(x - f64::EPSILON * x.abs().max(1.0));
            d = d.max((fx_self - fx_other).abs());
        }
        for &x in &other.sorted {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf(v: &[f64]) -> Ecdf {
        Ecdf::from_samples(v.iter().copied()).unwrap()
    }

    #[test]
    fn empty_sample_is_an_error() {
        assert_eq!(Ecdf::from_samples([]), Err(BuildEcdfError::Empty));
        assert_eq!(
            Ecdf::from_samples([f64::NAN, f64::INFINITY]),
            Err(BuildEcdfError::Empty)
        );
        assert!(!BuildEcdfError::Empty.to_string().is_empty());
    }

    #[test]
    fn eval_step_function() {
        let c = cdf(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.eval(0.5), 0.0);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(2.5), 0.5);
        assert_eq!(c.eval(4.0), 1.0);
        assert_eq!(c.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let c = cdf(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(c.quantile(0.0), 10.0);
        assert_eq!(c.quantile(0.2), 10.0);
        assert_eq!(c.quantile(0.21), 20.0);
        assert_eq!(c.quantile(0.5), 30.0);
        assert_eq!(c.quantile(1.0), 50.0);
        assert_eq!(c.median(), 30.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_validates_range() {
        cdf(&[1.0]).quantile(1.5);
    }

    #[test]
    fn min_max_mean_variance() {
        let c = cdf(&[4.0, 2.0, 8.0, 6.0]);
        assert_eq!(c.min(), 2.0);
        assert_eq!(c.max(), 8.0);
        assert_eq!(c.mean(), 5.0);
        assert!((c.sample_variance() - 20.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let c = cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(c.samples(), &[1.0, 2.0, 3.0]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn curve_spans_range_and_is_monotone() {
        let c = cdf(&[0.0, 1.0, 2.0, 5.0, 10.0]);
        let curve = c.curve(11);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].0, 0.0);
        assert_eq!(curve[10].0, 10.0);
        assert_eq!(curve[10].1, 1.0);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
    }

    #[test]
    fn ks_distance_identical_is_zero() {
        let a = cdf(&[1.0, 2.0, 3.0]);
        assert_eq!(a.ks_distance(&a.clone()), 0.0);
    }

    #[test]
    fn ks_distance_disjoint_is_one() {
        let a = cdf(&[1.0, 2.0, 3.0]);
        let b = cdf(&[10.0, 20.0, 30.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
        assert_eq!(b.ks_distance(&a), 1.0);
    }

    #[test]
    fn ks_distance_shifted_half() {
        // a: {0,1}, b: {1,2}: max gap is 0.5 at x in [0,1).
        let a = cdf(&[0.0, 1.0]);
        let b = cdf(&[1.0, 2.0]);
        assert!((a.ks_distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_finite_samples_dropped() {
        let c = Ecdf::from_samples([1.0, f64::NAN, 2.0]).unwrap();
        assert_eq!(c.len(), 2);
    }
}
