//! Fixed-bin histograms.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A histogram with uniform bins over `[lo, hi)` plus underflow/overflow
/// counters.
///
/// # Examples
///
/// ```
/// use bcbpt_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
/// h.record(5.0);
/// h.record(15.0);
/// h.record(15.5);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(1), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    lo_milli: i64,
    hi_milli: i64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

/// Error constructing a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildHistogramError {
    /// `hi` was not strictly greater than `lo`.
    EmptyRange,
    /// Zero bins were requested.
    NoBins,
    /// A bound was NaN or infinite.
    NonFiniteBound,
}

impl fmt::Display for BuildHistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BuildHistogramError::EmptyRange => "histogram range is empty",
            BuildHistogramError::NoBins => "histogram needs at least one bin",
            BuildHistogramError::NonFiniteBound => "histogram bounds must be finite",
        };
        f.write_str(s)
    }
}

impl std::error::Error for BuildHistogramError {}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// Bounds are stored with milli-unit precision so the type stays `Eq`.
    ///
    /// # Errors
    ///
    /// * [`BuildHistogramError::NonFiniteBound`] for NaN/infinite bounds.
    /// * [`BuildHistogramError::EmptyRange`] when `hi <= lo`.
    /// * [`BuildHistogramError::NoBins`] when `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, BuildHistogramError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(BuildHistogramError::NonFiniteBound);
        }
        if hi <= lo {
            return Err(BuildHistogramError::EmptyRange);
        }
        if bins == 0 {
            return Err(BuildHistogramError::NoBins);
        }
        Ok(Histogram {
            lo_milli: (lo * 1000.0).round() as i64,
            hi_milli: (hi * 1000.0).round() as i64,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> f64 {
        self.lo_milli as f64 / 1000.0
    }

    /// Upper bound (exclusive).
    pub fn hi(&self) -> f64 {
        self.hi_milli as f64 / 1000.0
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi() - self.lo()) / self.bins.len() as f64
    }

    /// Records an observation; out-of-range values land in the
    /// underflow/overflow counters, non-finite values are dropped.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let lo = self.lo();
        let hi = self.hi();
        if x < lo {
            self.underflow += 1;
        } else if x >= hi {
            self.overflow += 1;
        } else {
            let idx = ((x - lo) / self.bin_width()) as usize;
            let idx = idx.min(self.bins.len() - 1); // guard FP edge at hi
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= num_bins()`.
    pub fn bin_count(&self, index: usize) -> u64 {
        self.bins[index]
    }

    /// `(bin_lower_edge, count)` for each bin.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let lo = self.lo();
        let w = self.bin_width();
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (lo + w * i as f64, c))
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Errors
    ///
    /// Returns `Err(MergeMismatch)` when the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), MergeMismatch> {
        if self.lo_milli != other.lo_milli
            || self.hi_milli != other.hi_milli
            || self.bins.len() != other.bins.len()
        {
            return Err(MergeMismatch);
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        Ok(())
    }
}

/// Error merging histograms with different geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeMismatch;

impl fmt::Display for MergeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("histogram geometries differ")
    }
}

impl std::error::Error for MergeMismatch {}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(
            Histogram::new(1.0, 1.0, 4),
            Err(BuildHistogramError::EmptyRange)
        );
        assert_eq!(
            Histogram::new(2.0, 1.0, 4),
            Err(BuildHistogramError::EmptyRange)
        );
        assert_eq!(
            Histogram::new(0.0, 1.0, 0),
            Err(BuildHistogramError::NoBins)
        );
        assert_eq!(
            Histogram::new(f64::NAN, 1.0, 2),
            Err(BuildHistogramError::NonFiniteBound)
        );
        for e in [
            BuildHistogramError::EmptyRange,
            BuildHistogramError::NoBins,
            BuildHistogramError::NonFiniteBound,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.0, 1.9, 2.0, 5.5, 9.99] {
            h.record(x);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.bin_width(), 2.0);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 1).unwrap();
        h.record(-0.5);
        h.record(1.0); // hi is exclusive
        h.record(9.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
        h.record(f64::NAN);
        assert_eq!(h.total(), 3, "NaN dropped entirely");
    }

    #[test]
    fn iter_yields_edges_and_counts() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.record(2.5);
        let v: Vec<(f64, u64)> = h.iter().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v[2], (2.0, 1));
    }

    #[test]
    fn merge_same_geometry() {
        let mut a = Histogram::new(0.0, 10.0, 2).unwrap();
        let mut b = Histogram::new(0.0, 10.0, 2).unwrap();
        a.record(1.0);
        b.record(2.0);
        b.record(7.0);
        a.merge(&b).unwrap();
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.bin_count(1), 1);
    }

    #[test]
    fn merge_mismatch_rejected() {
        let mut a = Histogram::new(0.0, 10.0, 2).unwrap();
        let b = Histogram::new(0.0, 10.0, 3).unwrap();
        assert_eq!(a.merge(&b), Err(MergeMismatch));
        let c = Histogram::new(0.0, 20.0, 2).unwrap();
        assert_eq!(a.merge(&c), Err(MergeMismatch));
        assert!(!MergeMismatch.to_string().is_empty());
    }

    #[test]
    fn extend_records_all() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend((0..10).map(f64::from));
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn accessors_round_trip() {
        let h = Histogram::new(0.5, 2.5, 8).unwrap();
        assert_eq!(h.lo(), 0.5);
        assert_eq!(h.hi(), 2.5);
        assert_eq!(h.num_bins(), 8);
        assert_eq!(h.bin_width(), 0.25);
    }
}
