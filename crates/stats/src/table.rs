//! Plain-text rendering of result tables and figure series.
//!
//! The bench harness regenerates the paper's figures as text: one labelled
//! series per protocol/threshold, one row per x-point. Keeping the renderer
//! here lets unit tests assert on exact output.

use core::fmt::Write as _;
use serde::{Deserialize, Serialize};

/// One labelled data series, e.g. the Δt CDF of one protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series label, e.g. `"BCBPT (dt=25ms)"`.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a labelled series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// A figure: a caption plus one or more series sharing an x-axis meaning.
///
/// # Examples
///
/// ```
/// use bcbpt_stats::{Figure, Series};
///
/// let fig = Figure::new("Fig.3", "delay ms", "CDF")
///     .with_series(Series::new("bitcoin", vec![(0.0, 0.0), (10.0, 1.0)]));
/// let text = fig.render();
/// assert!(text.contains("Fig.3"));
/// assert!(text.contains("bitcoin"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Figure caption.
    pub caption: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        caption: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            caption: caption.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series (builder style).
    #[must_use]
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Adds a series in place.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Renders the figure as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.caption);
        let _ = writeln!(out, "# x: {}   y: {}", self.x_label, self.y_label);
        for s in &self.series {
            let _ = writeln!(out, "## series: {}", s.label);
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{x:>12.4}  {y:>10.4}");
            }
        }
        out
    }

    /// Renders all series side by side on a shared x column (series must
    /// have identical x grids; rows missing from a series render as blanks).
    pub fn render_columns(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.caption);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "  {:>18}", truncate(&s.label, 18));
        }
        out.push('\n');
        let rows = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for i in 0..rows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(i).map(|p| p.0));
            match x {
                Some(x) => {
                    let _ = write!(out, "{x:>12.4}");
                }
                None => {
                    let _ = write!(out, "{:>12}", "");
                }
            }
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => {
                        let _ = write!(out, "  {y:>18.4}");
                    }
                    None => {
                        let _ = write!(out, "  {:>18}", "");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A simple key/statistics table (used for summary reports).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StatTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl StatTable {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        StatTable {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a labelled row.
    ///
    /// # Panics
    ///
    /// Panics when the value count differs from the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row arity must match columns"
        );
        self.rows.push((label.into(), values));
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows as `(label, values)` pairs.
    pub fn rows(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.rows.iter().map(|(l, v)| (l.as_str(), v.as_slice()))
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([8])
            .max()
            .unwrap_or(8);
        let _ = write!(out, "{:<label_w$}", "");
        for c in &self.columns {
            let _ = write!(out, "  {c:>12}");
        }
        out.push('\n');
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:<label_w$}");
            for v in values {
                let _ = write!(out, "  {v:>12.4}");
            }
            out.push('\n');
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_render_contains_everything() {
        let fig = Figure::new("Test figure", "x", "y")
            .with_series(Series::new("s1", vec![(1.0, 0.5)]))
            .with_series(Series::new("s2", vec![(2.0, 0.7)]));
        let text = fig.render();
        assert!(text.contains("Test figure"));
        assert!(text.contains("series: s1"));
        assert!(text.contains("series: s2"));
        assert!(text.contains("0.5000"));
        assert!(text.contains("0.7000"));
    }

    #[test]
    fn figure_columns_layout() {
        let fig = Figure::new("F", "delay", "cdf")
            .with_series(Series::new("a", vec![(1.0, 0.1), (2.0, 0.2)]))
            .with_series(Series::new("b", vec![(1.0, 0.3)]));
        let text = fig.render_columns();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // caption, header, 2 rows
        assert!(lines[1].contains("delay"));
        assert!(lines[2].contains("0.1000"));
        assert!(lines[2].contains("0.3000"));
        assert!(lines[3].contains("0.2000"));
    }

    #[test]
    fn push_series_in_place() {
        let mut fig = Figure::new("F", "x", "y");
        fig.push_series(Series::new("a", vec![]));
        assert_eq!(fig.series.len(), 1);
    }

    #[test]
    fn stat_table_renders_rows() {
        let mut t = StatTable::new("Delays", &["mean", "p90"]);
        t.push_row("bitcoin", vec![120.0, 300.0]);
        t.push_row("bcbpt", vec![40.0, 80.0]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.render();
        assert!(text.contains("Delays"));
        assert!(text.contains("bitcoin"));
        assert!(text.contains("40.0000"));
        let rows: Vec<_> = t.rows().collect();
        assert_eq!(rows[1].0, "bcbpt");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn stat_table_validates_arity() {
        let mut t = StatTable::new("T", &["a"]);
        t.push_row("r", vec![1.0, 2.0]);
    }

    #[test]
    fn truncate_handles_unicode() {
        assert_eq!(truncate("héllo wörld", 5), "héllo");
        assert_eq!(truncate("ab", 5), "ab");
    }
}
