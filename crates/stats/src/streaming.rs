//! Mergeable streaming accumulators for live campaign statistics.
//!
//! The batch path collects every `Δt(m,n)` sample into a vector and
//! recomputes summaries from scratch; a streaming session instead *folds*
//! each run's harvest into two accumulators as the run completes:
//!
//! * [`StreamingSummary`] — Welford moments plus a normal-approximation
//!   confidence interval on the mean, the quantity adaptive stop rules
//!   watch. O(1) per sample, mergeable across parallel shards.
//! * [`EcdfBuilder`] — retains the (unsorted) finite samples so the final
//!   [`Ecdf`] is built with one sort at the end instead of a re-collect +
//!   re-sort per query. Mergeable in sample order.
//!
//! Both fold in the same sample order as the batch path, so a streaming
//! session's statistics are bit-identical to the post-hoc ones.

use crate::bootstrap::ConfidenceInterval;
use crate::ecdf::{BuildEcdfError, Ecdf};
use crate::summary::Summary;
use serde::{Deserialize, Serialize};

/// The standard normal quantile function (inverse CDF), `Φ⁻¹(p)`.
///
/// Peter Acklam's rational approximation (relative error < 1.15e-9 over
/// the whole open interval) — accurate far beyond what a stopping rule
/// needs, with no lookup tables.
///
/// # Examples
///
/// ```
/// use bcbpt_stats::normal_quantile;
///
/// assert_eq!(normal_quantile(0.5), 0.0);
/// assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
/// assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
/// ```
///
/// # Panics
///
/// Panics when `p` is outside the open interval `(0, 1)` or NaN.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal quantile needs p in (0, 1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// A mergeable Welford accumulator with a confidence interval on the mean.
///
/// Wraps [`Summary`] (same moments, same fold order ⇒ bit-identical
/// statistics) and adds the quantity adaptive stopping consults: a
/// normal-approximation interval `mean ± z·sd/√n`, cheap enough to
/// evaluate at every run-fold checkpoint where a bootstrap would not be.
///
/// # Examples
///
/// ```
/// use bcbpt_stats::StreamingSummary;
///
/// let mut s = StreamingSummary::new();
/// s.extend((0..100).map(f64::from));
/// let hw = s.mean_half_width(0.95);
/// assert!(hw > 0.0);
/// let ci = s.mean_ci(0.95).unwrap();
/// assert!(ci.contains(s.mean()));
/// assert!((ci.width() - 2.0 * hw).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StreamingSummary {
    summary: Summary,
}

impl StreamingSummary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingSummary {
            summary: Summary::new(),
        }
    }

    /// Records one observation (non-finite values are ignored, as in
    /// [`Summary`]).
    pub fn record(&mut self, x: f64) {
        self.summary.record(x);
    }

    /// Merges another accumulator (parallel Welford combine).
    pub fn merge(&mut self, other: &StreamingSummary) {
        self.summary.merge(&other.summary);
    }

    /// The accumulated moments as a plain [`Summary`].
    pub fn summary(&self) -> Summary {
        self.summary
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.summary.is_empty()
    }

    /// Running mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// Running sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.summary.std_dev()
    }

    /// Half-width of the normal-approximation confidence interval on the
    /// mean at `level`: `z·sd/√n`. `NaN` with fewer than two observations
    /// (no variance estimate yet).
    ///
    /// # Panics
    ///
    /// Panics when `level` is outside `(0, 1)`.
    pub fn mean_half_width(&self, level: f64) -> f64 {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level {level} outside (0, 1)"
        );
        if self.summary.count() < 2 {
            return f64::NAN;
        }
        let z = normal_quantile(0.5 + level / 2.0);
        z * self.summary.std_dev() / (self.summary.count() as f64).sqrt()
    }

    /// The normal-approximation confidence interval on the mean, or `None`
    /// with fewer than two observations.
    ///
    /// # Panics
    ///
    /// Panics when `level` is outside `(0, 1)`.
    pub fn mean_ci(&self, level: f64) -> Option<ConfidenceInterval> {
        let half = self.mean_half_width(level);
        if !half.is_finite() {
            return None;
        }
        let mean = self.summary.mean();
        Some(ConfidenceInterval {
            estimate: mean,
            lo: mean - half,
            hi: mean + half,
            level,
        })
    }
}

impl Extend<f64> for StreamingSummary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.summary.extend(iter);
    }
}

impl FromIterator<f64> for StreamingSummary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        StreamingSummary {
            summary: iter.into_iter().collect(),
        }
    }
}

/// A mergeable ECDF accumulator: retains finite samples in arrival order
/// and sorts once when the [`Ecdf`] is materialised.
///
/// Folding run harvests into a builder and building at the end is
/// bit-identical to `Ecdf::from_samples` over the concatenated stream —
/// the invariant that lets streaming sessions reuse the batch fixtures.
///
/// # Examples
///
/// ```
/// use bcbpt_stats::{Ecdf, EcdfBuilder};
///
/// let mut left = EcdfBuilder::new();
/// left.extend([3.0, 1.0]);
/// let mut right = EcdfBuilder::new();
/// right.extend([2.0, f64::NAN]);
/// left.merge(&right);
/// assert_eq!(left.len(), 3);
/// let cdf = left.build().unwrap();
/// assert_eq!(cdf.samples(), &[1.0, 2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EcdfBuilder {
    samples: Vec<f64>,
}

impl EcdfBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        EcdfBuilder {
            samples: Vec::new(),
        }
    }

    /// Creates an empty builder with room for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        EcdfBuilder {
            samples: Vec::with_capacity(capacity),
        }
    }

    /// Records one sample; non-finite values are dropped (matching
    /// [`Ecdf::from_samples`]).
    pub fn push(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
        }
    }

    /// Appends another builder's samples after this one's.
    pub fn merge(&mut self, other: &EcdfBuilder) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of retained (finite) samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no finite sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The retained samples, in arrival order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Builds the ECDF without consuming the builder (clones the samples).
    ///
    /// # Errors
    ///
    /// Returns [`BuildEcdfError::Empty`] when no finite sample was recorded.
    pub fn build(&self) -> Result<Ecdf, BuildEcdfError> {
        Ecdf::from_samples(self.samples.iter().copied())
    }

    /// Builds the ECDF, consuming the builder (single sort, no clone).
    ///
    /// # Errors
    ///
    /// Returns [`BuildEcdfError::Empty`] when no finite sample was recorded.
    pub fn into_ecdf(self) -> Result<Ecdf, BuildEcdfError> {
        Ecdf::from_samples(self.samples)
    }
}

impl Extend<f64> for EcdfBuilder {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for EcdfBuilder {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut b = EcdfBuilder::new();
        b.extend(iter);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_matches_known_values() {
        for (p, z) in [
            (0.5, 0.0),
            (0.8413447460685429, 1.0),
            (0.975, 1.959963984540054),
            (0.995, 2.5758293035489004),
            (0.9999, 3.719016485455709),
        ] {
            assert!(
                (normal_quantile(p) - z).abs() < 1e-6,
                "Φ⁻¹({p}) = {} ≠ {z}",
                normal_quantile(p)
            );
            assert!(
                (normal_quantile(1.0 - p) + z).abs() < 1e-6,
                "symmetry at {p}"
            );
        }
    }

    #[test]
    fn normal_quantile_is_monotone_in_the_tails() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let p = i as f64 / 1000.0;
            let z = normal_quantile(p);
            assert!(z > prev, "Φ⁻¹ must be strictly increasing at {p}");
            prev = z;
        }
    }

    #[test]
    #[should_panic(expected = "(0, 1)")]
    fn normal_quantile_rejects_endpoints() {
        normal_quantile(1.0);
    }

    #[test]
    fn streaming_summary_matches_plain_summary_bitwise() {
        let xs: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.61).sin() * 40.0 + 50.0)
            .collect();
        let plain: Summary = xs.iter().copied().collect();
        let streaming: StreamingSummary = xs.iter().copied().collect();
        assert_eq!(streaming.summary(), plain, "same fold order, same bits");
        assert_eq!(streaming.count(), plain.count());
        assert_eq!(streaming.mean(), plain.mean());
    }

    #[test]
    fn half_width_shrinks_with_sample_count() {
        let mut s = StreamingSummary::new();
        s.extend((0..50).map(|i| (i % 10) as f64));
        let early = s.mean_half_width(0.95);
        s.extend((0..5000).map(|i| (i % 10) as f64));
        let late = s.mean_half_width(0.95);
        assert!(late < early / 5.0, "{late} vs {early}");
    }

    #[test]
    fn half_width_needs_two_samples() {
        let mut s = StreamingSummary::new();
        assert!(s.mean_half_width(0.9).is_nan());
        assert!(s.mean_ci(0.9).is_none());
        s.record(1.0);
        assert!(s.mean_half_width(0.9).is_nan());
        s.record(2.0);
        assert!(s.mean_half_width(0.9).is_finite());
        let ci = s.mean_ci(0.9).unwrap();
        assert_eq!(ci.estimate, 1.5);
        assert!(ci.contains(1.5));
    }

    #[test]
    fn streaming_summary_merge_matches_sequential() {
        let xs: Vec<f64> = (0..300).map(|i| (i as f64).sqrt()).collect();
        let seq: StreamingSummary = xs.iter().copied().collect();
        let mut merged: StreamingSummary = xs[..120].iter().copied().collect();
        merged.merge(&xs[120..].iter().copied().collect());
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-9);
    }

    #[test]
    fn ecdf_builder_matches_batch_construction() {
        let xs = [9.0, 2.0, f64::NAN, 5.0, 2.0, f64::INFINITY, 7.0];
        let batch = Ecdf::from_samples(xs.iter().copied()).unwrap();
        let built: EcdfBuilder = xs.iter().copied().collect();
        assert_eq!(built.len(), 5);
        assert_eq!(built.build().unwrap(), batch);
        assert_eq!(built.into_ecdf().unwrap(), batch);
    }

    #[test]
    fn ecdf_builder_merge_preserves_arrival_order() {
        let mut a: EcdfBuilder = [3.0, 1.0].iter().copied().collect();
        let b: EcdfBuilder = [2.0].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.samples(), &[3.0, 1.0, 2.0], "merge appends, not sorts");
        assert_eq!(a.build().unwrap().samples(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn ecdf_builder_merge_across_a_shard_boundary_matches_one_stream() {
        // The cross-process shard contract: folding a sample stream into
        // per-shard builders and merging them in shard order is
        // bit-identical to folding the whole stream into one builder —
        // arrival order is preserved across every boundary.
        let stream: Vec<f64> = (0..40).map(|i| ((i * 37) % 19) as f64 * 1.5).collect();
        let whole: EcdfBuilder = stream.iter().copied().collect();
        for split in [0usize, 1, 20, 39, 40] {
            let mut left: EcdfBuilder = stream[..split].iter().copied().collect();
            let right: EcdfBuilder = stream[split..].iter().copied().collect();
            left.merge(&right);
            assert_eq!(left, whole, "split at {split} changed the stream");
            assert_eq!(left.build().unwrap(), whole.build().unwrap());
        }
    }

    #[test]
    fn merging_an_empty_shard_is_a_no_op() {
        // Sharding can hand a shard zero runs (more shards than runs);
        // merging its empty accumulators must change nothing, on either
        // side of the merge.
        let empty_summary = StreamingSummary::new();
        let mut summary: StreamingSummary = [5.0, 7.0, 11.0].iter().copied().collect();
        let before = summary;
        summary.merge(&empty_summary);
        assert_eq!(summary, before, "merging an empty summary changed bits");
        let mut acc = StreamingSummary::new();
        acc.merge(&before);
        assert_eq!(acc, before, "merging into an empty summary changed bits");

        let empty_ecdf = EcdfBuilder::new();
        let mut ecdf: EcdfBuilder = [5.0, 7.0].iter().copied().collect();
        let before = ecdf.clone();
        ecdf.merge(&empty_ecdf);
        assert_eq!(ecdf, before);
        let mut acc = EcdfBuilder::new();
        acc.merge(&before);
        assert_eq!(acc, before);
    }

    #[test]
    fn empty_ecdf_builder_errors() {
        let b = EcdfBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.build(), Err(BuildEcdfError::Empty));
        assert_eq!(b.into_ecdf(), Err(BuildEcdfError::Empty));
    }

    #[test]
    fn streaming_types_serde_round_trip() {
        use serde::{Deserialize, Serialize};
        let s: StreamingSummary = [1.0, 2.0, 3.0].iter().copied().collect();
        let back = StreamingSummary::from_value(&s.to_value()).unwrap();
        assert_eq!(back, s);
        let b: EcdfBuilder = [4.0, 1.0].iter().copied().collect();
        let back = EcdfBuilder::from_value(&b.to_value()).unwrap();
        assert_eq!(back, b);
    }
}
