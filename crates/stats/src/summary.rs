//! Streaming summary statistics.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Single-pass summary of a stream of observations: count, mean, variance
/// (Welford's algorithm), min and max.
///
/// Numerically stable and O(1) per observation, so it can run inline in the
/// hot path of a simulation with millions of samples.
///
/// # Examples
///
/// ```
/// use bcbpt_stats::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    ///
    /// Non-finite values are ignored (and counted separately by callers that
    /// care); a simulation latency can never meaningfully be NaN.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); `0.0` with fewer than 1 sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`); `0.0` with fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another summary into this one (parallel Welford combine).
    ///
    /// # Examples
    ///
    /// ```
    /// use bcbpt_stats::Summary;
    ///
    /// let all: Summary = (0..100).map(f64::from).collect();
    /// let mut left: Summary = (0..40).map(f64::from).collect();
    /// let right: Summary = (40..100).map(f64::from).collect();
    /// left.merge(&right);
    /// assert_eq!(left.count(), all.count());
    /// assert!((left.mean() - all.mean()).abs() < 1e-9);
    /// assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-6);
    /// ```
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.record(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn known_variance() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].iter().copied().collect();
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.population_variance(), 2.0);
        assert_eq!(s.sample_variance(), 2.5);
        assert_eq!(s.sum(), 15.0);
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn merge_empty_cases() {
        let mut a = Summary::new();
        let b: Summary = [1.0, 2.0].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let mut c: Summary = [1.0, 2.0].iter().copied().collect();
        c.merge(&Summary::new());
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 100.0).collect();
        let seq: Summary = xs.iter().copied().collect();
        let mut merged: Summary = xs[..300].iter().copied().collect();
        let right: Summary = xs[300..].iter().copied().collect();
        merged.merge(&right);
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-9);
        assert!((merged.sample_variance() - seq.sample_variance()).abs() < 1e-6);
        assert_eq!(merged.min(), seq.min());
        assert_eq!(merged.max(), seq.max());
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case: large offset, small spread.
        let offset = 1.0e9;
        let s: Summary = [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0]
            .iter()
            .copied()
            .collect();
        assert!((s.mean() - (offset + 10.0)).abs() < 1e-3);
        assert!((s.sample_variance() - 30.0).abs() < 1e-3);
    }

    #[test]
    fn display_is_nonempty() {
        let s: Summary = [1.0].iter().copied().collect();
        assert!(s.to_string().contains("n=1"));
    }
}
