//! Extension experiment: stale-block (fork) rate per relay protocol under
//! proof-of-work — the consequence of propagation delay the paper's
//! motivation describes (§I).
//!
//! Usage: `cargo run --release -p bcbpt-bench --bin forks [--paper]`

use bcbpt_cluster::Protocol;
use bcbpt_core::{fork_table, ExperimentConfig};

fn main() -> Result<(), String> {
    let paper = std::env::args().any(|a| a == "--paper");
    let (mut base, interval_ms, duration_ms) = if paper {
        (
            ExperimentConfig::paper(Protocol::Bitcoin),
            2_000.0,
            600_000.0,
        )
    } else {
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 400;
        cfg.warmup_ms = 5_000.0;
        cfg.runs = 0;
        (cfg, 1_000.0, 300_000.0)
    };
    // Compact-block relay: 20 KB payloads make block propagation
    // latency-bound, which is where the relay protocol matters (with full
    // 200 KB blocks, serialization and verification dominate and the
    // protocols tie — that tie is itself reported in EXPERIMENTS.md).
    base.net.block_size_bytes = 20_000;
    let table = fork_table(
        &base,
        &[Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()],
        interval_ms,
        duration_ms,
    )?;
    println!("{}", table.render());
    Ok(())
}
