//! Extension experiment: delay variance vs measuring-node connection count
//! (the paper's §V.C claim: Bitcoin's variance grows with connections,
//! BCBPT's stays flat).
//!
//! Usage: `cargo run --release -p bcbpt-bench --bin degree [--paper]`

use bcbpt_cluster::Protocol;
use bcbpt_core::{degree_variance_table, ExperimentConfig};

fn main() -> Result<(), String> {
    let paper = std::env::args().any(|a| a == "--paper");
    let base = if paper {
        ExperimentConfig::paper(Protocol::Bitcoin)
    } else {
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 400;
        cfg.warmup_ms = 5_000.0;
        cfg.runs = 60;
        cfg
    };
    let table = degree_variance_table(
        &base,
        &[Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()],
        4,
    )?;
    println!("{}", table.render());
    Ok(())
}
