//! Regenerates the overhead evaluation the paper defers to future work
//! (§IV.A): probing/control/relay message budgets per protocol.
//!
//! Usage: `cargo run --release -p bcbpt-bench --bin overhead [--paper]`

use bcbpt_cluster::Protocol;
use bcbpt_core::{overhead_table, ExperimentConfig};

fn main() -> Result<(), String> {
    let paper = std::env::args().any(|a| a == "--paper");
    let base = if paper {
        ExperimentConfig::paper(Protocol::Bitcoin)
    } else {
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 300;
        cfg.warmup_ms = 5_000.0;
        cfg.runs = 10;
        cfg
    };
    let table = overhead_table(
        &base,
        &[Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()],
    )?;
    println!("{}", table.render());
    Ok(())
}
