//! Regenerates the paper's Fig. 3: Δt(m,n) distributions for Bitcoin vs
//! LBC vs BCBPT (dt = 25 ms).
//!
//! Usage: `cargo run --release -p bcbpt-bench --bin fig3 [--paper]`
//! `--paper` runs the full 5000-node / 1000-run configuration.

use bcbpt_cluster::Protocol;
use bcbpt_core::{fig3, ExperimentConfig};

fn main() -> Result<(), String> {
    let paper = std::env::args().any(|a| a == "--paper");
    let base = if paper {
        ExperimentConfig::paper(Protocol::Bitcoin)
    } else {
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 400;
        cfg.warmup_ms = 5_000.0;
        cfg.runs = 40;
        cfg
    };
    eprintln!(
        "fig3: {} nodes, {} runs, warmup {} ms",
        base.net.num_nodes, base.runs, base.warmup_ms
    );
    let bundle = fig3(&base)?;
    println!("{}", bundle.render());
    Ok(())
}
