//! Regenerates the security evaluation the paper defers to future work
//! (§V.C): eclipse exposure and partition resilience per protocol.
//!
//! Usage: `cargo run --release -p bcbpt-bench --bin attacks [--paper]`

use bcbpt_cluster::Protocol;
use bcbpt_core::{eclipse_table, partition_table, ExperimentConfig};

fn main() -> Result<(), String> {
    let paper = std::env::args().any(|a| a == "--paper");
    let base = if paper {
        ExperimentConfig::paper(Protocol::Bitcoin)
    } else {
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 300;
        cfg.warmup_ms = 5_000.0;
        cfg.runs = 0;
        cfg
    };
    let protocols = [Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()];
    let eclipse = eclipse_table(&base, &protocols, 0.10, 10)?;
    println!("{}", eclipse.render());
    let partition = partition_table(&base, &protocols)?;
    println!("{}", partition.render());
    Ok(())
}
