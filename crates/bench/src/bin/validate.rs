//! Regenerates the simulator-validation experiment (paper §V.A): compares
//! the simulated network-wide propagation-delay distribution against the
//! reference shape.
//!
//! Usage: `cargo run --release -p bcbpt-bench --bin validate [--paper]`

use bcbpt_cluster::Protocol;
use bcbpt_core::{validate_delays, ExperimentConfig};

fn main() -> Result<(), String> {
    let paper = std::env::args().any(|a| a == "--paper");
    let mut base = if paper {
        ExperimentConfig::paper(Protocol::Bitcoin)
    } else {
        // The reference-shape comparison is calibrated at the scale the
        // integration suite validates (150 nodes, 45 s windows): the slow
        // 2013-era relay needs the longer window for the tail to arrive,
        // and hop-count growth at larger populations thickens it.
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 150;
        cfg.warmup_ms = 3_000.0;
        cfg.window_ms = 45_000.0;
        // Run count mirrors the CI shape test (tests/future_work.rs): the
        // tail-ratio margin is calibrated there; pooling many replays of
        // one topology sharpens the tail estimate past it.
        cfg.runs = 6;
        cfg
    };
    // Validate the *vanilla* simulator. Validation emulates the behaviour
    // of the crawled 2013-era network (trickled INVs, heterogeneous
    // verifiers, badly-connected minority) — see NetConfig::measured_client
    // and DESIGN.md §2.
    base.protocol = Protocol::Bitcoin.into();
    let n = base.net.num_nodes;
    base.net = bcbpt_net::NetConfig::measured_client();
    base.net.num_nodes = n;
    let campaign = base.run()?;
    let arrivals = campaign.all_arrivals_ms();
    eprintln!(
        "validate: {} arrival samples from {} runs",
        arrivals.len(),
        campaign.runs.len()
    );
    let report = validate_delays(&arrivals)?;
    println!("{}", report.render());
    Ok(())
}
