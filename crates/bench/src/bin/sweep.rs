//! Extension experiment: fine-grained BCBPT threshold sweep with cluster
//! structure statistics.
//!
//! Usage: `cargo run --release -p bcbpt-bench --bin sweep [--paper]`

use bcbpt_cluster::Protocol;
use bcbpt_core::{threshold_sweep, ExperimentConfig};

fn main() -> Result<(), String> {
    let paper = std::env::args().any(|a| a == "--paper");
    let base = if paper {
        ExperimentConfig::paper(Protocol::Bitcoin)
    } else {
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 400;
        cfg.warmup_ms = 5_000.0;
        cfg.runs = 25;
        cfg
    };
    let thresholds = [10.0, 25.0, 30.0, 50.0, 75.0, 100.0, 150.0, 200.0];
    eprintln!(
        "sweep: {} nodes, {} runs per threshold",
        base.net.num_nodes, base.runs
    );
    let table = threshold_sweep(&base, &thresholds)?;
    println!("{}", table.render());
    Ok(())
}
