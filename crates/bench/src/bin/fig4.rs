//! Regenerates the paper's Fig. 4: Δt(m,n) distributions for BCBPT at
//! thresholds 30/50/100 ms.
//!
//! Usage: `cargo run --release -p bcbpt-bench --bin fig4 [--paper]`

use bcbpt_cluster::Protocol;
use bcbpt_core::{fig4, ExperimentConfig};

fn main() -> Result<(), String> {
    let paper = std::env::args().any(|a| a == "--paper");
    let base = if paper {
        ExperimentConfig::paper(Protocol::Bitcoin)
    } else {
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 400;
        cfg.warmup_ms = 5_000.0;
        cfg.runs = 40;
        cfg
    };
    eprintln!(
        "fig4: {} nodes, {} runs, warmup {} ms",
        base.net.num_nodes, base.runs, base.warmup_ms
    );
    let bundle = fig4(&base)?;
    println!("{}", bundle.render());
    Ok(())
}
