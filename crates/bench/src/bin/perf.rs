//! Performance baseline: measures the hot layers this repository's BENCH
//! trajectory tracks and writes the results as JSON.
//!
//! * event-queue throughput (schedule + drain, timer cascade) in events/sec;
//! * relay-fabric throughput (one transaction flooding a 200-node network);
//! * the §V.B campaign loop: wall-clock for a multi-run campaign executed
//!   serially vs through the thread pool, with the determinism check;
//! * the campaign service: submit→complete wall-clock through an
//!   in-process `bcbpt-serve` daemon vs a direct `Scenario::run`, plus
//!   the response latency of a digest-keyed cache hit;
//! * the observability layer: the same campaign with no trace sink
//!   installed vs with span recording armed, bounding the disabled-path
//!   overhead the always-on metrics impose;
//! * the relay layer: the same proof-of-work experiment through the
//!   legacy relay-free path and each registered block-relay strategy
//!   (full / compact / RLNC), recording wall-clock, propagation delay
//!   and the wire-level bandwidth-waste accounting.
//!
//! Usage: `cargo run --release -p bcbpt-bench --bin perf [--quick] [OUT.json]`
//!
//! `--quick` shrinks the campaign for CI smoke runs. The output path
//! defaults to `BENCH_PR9.json` in the current directory; the checked-in
//! `BENCH_PR<k>.json` files (same core shape since PR 1) are the
//! campaign-runner performance trajectory EXPERIMENTS.md tracks.

use bcbpt_cluster::Protocol;
use bcbpt_core::ExperimentConfig;
use bcbpt_net::{NetConfig, Network, RandomPolicy};
use bcbpt_sim::{Control, Engine, SimDuration, SimTime};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct EngineMetrics {
    schedule_drain_events_per_sec: f64,
    timer_cascade_events_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct FloodMetrics {
    nodes: usize,
    events_processed: u64,
    events_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct CampaignMetrics {
    nodes: usize,
    runs: usize,
    window_ms: f64,
    serial_secs: f64,
    parallel_secs: f64,
    parallel_threads: usize,
    speedup: f64,
    deterministic: bool,
}

#[derive(Debug, Serialize)]
struct ServiceMetrics {
    scenario: String,
    direct_secs: f64,
    served_secs: f64,
    submit_overhead_secs: f64,
    cache_hit_secs: f64,
    cache_hit: bool,
}

#[derive(Debug, Serialize)]
struct ObsMetrics {
    runs: usize,
    baseline_secs: f64,
    traced_secs: f64,
    traced_spans: usize,
    /// `traced_secs / baseline_secs` — the full-recording cost, an upper
    /// bound on the disabled-path (no sink installed) overhead the
    /// ISSUE's ≤2 % budget constrains.
    overhead_ratio: f64,
}

#[derive(Debug, Serialize)]
struct RelayStrategyMetrics {
    relay: String,
    run_secs: f64,
    block_delay_ms: f64,
    bytes_on_wire: u64,
    redundant_bytes: u64,
    waste_ratio: f64,
}

#[derive(Debug, Serialize)]
struct RelayMetrics {
    nodes: usize,
    duration_ms: f64,
    /// Wall-clock of the relay-free legacy path — the baseline the `full`
    /// strategy's accounting overhead is judged against.
    legacy_secs: f64,
    strategies: Vec<RelayStrategyMetrics>,
}

#[derive(Debug, Serialize)]
struct PerfReport {
    host_cores: usize,
    engine: EngineMetrics,
    flood: FloodMetrics,
    campaign: CampaignMetrics,
    service: ServiceMetrics,
    obs: ObsMetrics,
    relay: RelayMetrics,
}

fn bench_engine() -> EngineMetrics {
    const N: u64 = 1_000_000;
    let start = Instant::now();
    let mut engine = Engine::<u64>::with_capacity(N as usize);
    for i in 0..N {
        engine.schedule_at(
            SimTime::from_micros(i.wrapping_mul(2_654_435_761) % 10_000_000),
            i,
        );
    }
    let mut sum = 0u64;
    engine.run(|_, v| {
        sum = sum.wrapping_add(v);
        Control::Continue
    });
    black_box(sum);
    let schedule_drain = N as f64 / start.elapsed().as_secs_f64();

    const CASCADE: u32 = 1_000_000;
    let start = Instant::now();
    let mut engine = Engine::new();
    engine.schedule_in(SimDuration::from_micros(1), 0u32);
    let mut n = 0u32;
    engine.run(|engine, _| {
        n += 1;
        if n < CASCADE {
            engine.schedule_in(SimDuration::from_micros(1), n);
        }
        Control::Continue
    });
    black_box(n);
    let cascade = f64::from(CASCADE) / start.elapsed().as_secs_f64();

    EngineMetrics {
        schedule_drain_events_per_sec: schedule_drain,
        timer_cascade_events_per_sec: cascade,
    }
}

fn bench_flood() -> FloodMetrics {
    let mut config = NetConfig::test_scale();
    config.num_nodes = 200;
    let mut net = Network::build(config, Box::new(RandomPolicy::new()), 42).expect("valid config");
    let origin = net.pick_online_node().expect("nodes online");
    let start = Instant::now();
    net.inject_watched_tx(origin, None).expect("online origin");
    net.run_for_ms(30_000.0);
    let elapsed = start.elapsed().as_secs_f64();
    let events = net.events_processed();
    FloodMetrics {
        nodes: 200,
        events_processed: events,
        events_per_sec: events as f64 / elapsed,
    }
}

fn bench_campaign(quick: bool) -> CampaignMetrics {
    let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
    cfg.net.num_nodes = 150;
    cfg.warmup_ms = 2_000.0;
    cfg.window_ms = 20_000.0;
    cfg.runs = if quick { 40 } else { 1000 };

    let start = Instant::now();
    let serial = cfg.run_serial().expect("campaign runs");
    let serial_secs = start.elapsed().as_secs_f64();

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let start = Instant::now();
    let parallel = cfg.run_with_threads(threads).expect("campaign runs");
    let parallel_secs = start.elapsed().as_secs_f64();

    CampaignMetrics {
        nodes: cfg.net.num_nodes,
        runs: cfg.runs,
        window_ms: cfg.window_ms,
        serial_secs,
        parallel_secs,
        parallel_threads: threads,
        speedup: serial_secs / parallel_secs,
        deterministic: serial == parallel,
    }
}

fn bench_service() -> ServiceMetrics {
    use bcbpt_core::Scenario;
    use bcbpt_serve::{client, ServeConfig, Server};

    let scenario = Scenario::builtin("fig3").expect("builtin").quick_scaled();
    let start = Instant::now();
    let direct = scenario.run().expect("direct run");
    let direct_secs = start.elapsed().as_secs_f64();
    black_box(&direct);

    let spool = std::env::temp_dir().join(format!("bcbpt-perf-spool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let server = Server::start(ServeConfig::new(&spool)).expect("server starts");
    let addr = server.local_addr().to_string();
    let body = scenario.to_json();

    // Cold submission: HTTP submit → queue → worker → stored outcome.
    let start = Instant::now();
    let response = client::post(&addr, "/scenarios", &body).expect("submit");
    assert_eq!(response.status, 202, "submit: {}", response.text());
    client::wait_job(&addr, "job-1", std::time::Duration::from_secs(3600)).expect("job settles");
    let served_secs = start.elapsed().as_secs_f64();

    // Warm resubmission: answered from the digest-keyed outcome store.
    let start = Instant::now();
    let response = client::post(&addr, "/scenarios", &body).expect("resubmit");
    let cache_hit = response.text().contains("\"cached\":true");
    let outcome = client::get(&addr, "/jobs/job-2/outcome").expect("outcome");
    assert_eq!(outcome.status, 200, "outcome: {}", outcome.text());
    let cache_hit_secs = start.elapsed().as_secs_f64();

    server.request_drain();
    server.wait().expect("drain");
    let _ = std::fs::remove_dir_all(&spool);

    ServiceMetrics {
        scenario: "fig3 --quick".to_string(),
        direct_secs,
        served_secs,
        submit_overhead_secs: served_secs - direct_secs,
        cache_hit_secs,
        cache_hit,
    }
}

/// The instrumentation cost question, answered A/B: the same serial
/// campaign with nothing armed (the shipped default — metrics counters
/// still tick, spans are one relaxed atomic load) vs with full span
/// recording installed. Interleaved, best-of-four each, so machine
/// noise hits both sides equally and the minima converge.
fn bench_obs(quick: bool) -> ObsMetrics {
    let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
    cfg.net.num_nodes = 150;
    cfg.warmup_ms = 2_000.0;
    cfg.window_ms = 20_000.0;
    cfg.runs = if quick { 20 } else { 200 };

    let mut baseline_secs = f64::INFINITY;
    let mut traced_secs = f64::INFINITY;
    let mut traced_spans = 0usize;
    for _ in 0..4 {
        let start = Instant::now();
        black_box(cfg.run_serial().expect("campaign runs"));
        baseline_secs = baseline_secs.min(start.elapsed().as_secs_f64());

        bcbpt_obs::install_trace();
        let start = Instant::now();
        black_box(cfg.run_serial().expect("campaign runs"));
        traced_secs = traced_secs.min(start.elapsed().as_secs_f64());
        traced_spans = bcbpt_obs::take_trace().len();
    }
    ObsMetrics {
        runs: cfg.runs,
        baseline_secs,
        traced_secs,
        traced_spans,
        overhead_ratio: traced_secs / baseline_secs,
    }
}

/// One proof-of-work experiment per relay path: the legacy relay-free
/// code, then every registered strategy through the registry. Best-of-two
/// wall-clock per path so a single scheduler hiccup cannot masquerade as
/// a relay-layer regression.
fn bench_relay(quick: bool) -> RelayMetrics {
    use bcbpt_core::fork_experiment;

    let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
    cfg.net.num_nodes = 150;
    cfg.net.block_size_bytes = 20_000;
    cfg.warmup_ms = 2_000.0;
    cfg.runs = 0;
    let duration_ms = if quick { 30_000.0 } else { 120_000.0 };

    let mut legacy_secs = f64::INFINITY;
    for _ in 0..2 {
        let start = Instant::now();
        black_box(fork_experiment(&cfg, Protocol::Bitcoin, 1_500.0, duration_ms).expect("legacy"));
        legacy_secs = legacy_secs.min(start.elapsed().as_secs_f64());
    }

    let mut strategies = Vec::new();
    for relay in ["full", "compact", "rlnc(chunks=16)"] {
        let with_relay = cfg.with_relay(relay);
        let mut run_secs = f64::INFINITY;
        let mut report = None;
        for _ in 0..2 {
            let start = Instant::now();
            let r = fork_experiment(&with_relay, Protocol::Bitcoin, 1_500.0, duration_ms)
                .expect("relay experiment");
            run_secs = run_secs.min(start.elapsed().as_secs_f64());
            report = Some(r);
        }
        let ext = report
            .expect("ran twice")
            .relay
            .expect("relay extension present");
        strategies.push(RelayStrategyMetrics {
            relay: relay.to_string(),
            run_secs,
            block_delay_ms: ext.block_delay_ms,
            bytes_on_wire: ext.bandwidth.bytes_on_wire,
            redundant_bytes: ext.bandwidth.redundant_bytes,
            waste_ratio: ext.bandwidth.waste_ratio,
        });
    }

    RelayMetrics {
        nodes: cfg.net.num_nodes,
        duration_ms,
        legacy_secs,
        strategies,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());

    eprintln!("perf: engine microbenchmarks...");
    let engine = bench_engine();
    eprintln!(
        "perf: schedule+drain {:.0} ev/s, cascade {:.0} ev/s",
        engine.schedule_drain_events_per_sec, engine.timer_cascade_events_per_sec
    );

    eprintln!("perf: relay flood...");
    let flood = bench_flood();
    eprintln!("perf: flood {:.0} ev/s", flood.events_per_sec);

    eprintln!(
        "perf: campaign ({} mode)...",
        if quick { "quick" } else { "full 1000-run" }
    );
    let campaign = bench_campaign(quick);
    eprintln!(
        "perf: campaign serial {:.2}s, parallel {:.2}s on {} threads (speedup {:.2}x, deterministic: {})",
        campaign.serial_secs,
        campaign.parallel_secs,
        campaign.parallel_threads,
        campaign.speedup,
        campaign.deterministic
    );
    assert!(
        campaign.deterministic,
        "parallel campaign diverged from serial"
    );

    eprintln!("perf: campaign service...");
    let service = bench_service();
    eprintln!(
        "perf: service submit→complete {:.2}s vs direct {:.2}s (overhead {:.3}s), cache hit {:.4}s (hit: {})",
        service.served_secs,
        service.direct_secs,
        service.submit_overhead_secs,
        service.cache_hit_secs,
        service.cache_hit
    );
    assert!(service.cache_hit, "resubmission missed the outcome store");

    eprintln!("perf: observability overhead...");
    let obs = bench_obs(quick);
    eprintln!(
        "perf: obs baseline {:.2}s vs traced {:.2}s ({} spans) — ratio {:.4}",
        obs.baseline_secs, obs.traced_secs, obs.traced_spans, obs.overhead_ratio
    );

    eprintln!("perf: relay strategies...");
    let relay = bench_relay(quick);
    eprintln!("perf: relay legacy {:.2}s", relay.legacy_secs);
    for s in &relay.strategies {
        eprintln!(
            "perf: relay {} {:.2}s — delay {:.0} ms, {:.1} MB on wire, waste {:.3}",
            s.relay,
            s.run_secs,
            s.block_delay_ms,
            s.bytes_on_wire as f64 / 1e6,
            s.waste_ratio
        );
        assert!(
            s.waste_ratio.is_finite(),
            "{}: waste must be finite",
            s.relay
        );
    }

    let report = PerfReport {
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        engine,
        flood,
        campaign,
        service,
        obs,
        relay,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    println!("{json}");
    eprintln!("perf: wrote {out_path}");
}
