//! The one experiment driver: runs declarative scenario files through the
//! streaming session API.
//!
//! Replaces the old per-figure binaries (`fig3`, `fig4`, `sweep`, `forks`,
//! `attacks`, `overhead`): every experiment is a JSON [`Scenario`] under
//! `scenarios/`, and this binary loads, validates and runs it — with live
//! progress, a machine-readable JSONL event stream, and adaptive stopping
//! on top of the [`bcbpt_core::ScenarioSession`] API.
//!
//! Usage:
//!
//! ```text
//! scenario run <file.json|name>... [options]   # run scenario files or built-ins
//! scenario quick <name> [options]              # run a built-in at CI scale
//! scenario list                                # list built-ins and their files
//! scenario export <dir>                        # write built-ins as JSON files
//! scenario parse <outcome.json>                # check an outcome file parses
//! scenario events <events.jsonl>               # check a JSONL event stream
//! scenario shard run <file.json|name> --shard i/N --out part-i.json
//!                                              # execute one shard of a campaign
//! scenario shard merge <part.json>...          # merge shard parts (in shard order)
//!
//! options:
//!   --quick             shrink to CI scale (implied by `quick`)
//!   --json              print the ScenarioOutcome as JSON, not rendered text
//!   --progress          live per-cell run counts on stderr
//!   --jsonl <path>      write one serialized RunEvent per line to <path>
//!   --stop-ci <w>       stop each cell once the Δt mean is known to ±w
//!                       (relative, 95% CI) instead of burning all runs
//!   --threads <n>       worker threads (output is identical for any value,
//!                       except under a wall-clock stop rule)
//!   --shard i/N         which shard of how many (shard run only)
//!   --out <path>        where to write the shard part (shard run only)
//! ```

use bcbpt_cluster::ProtocolRegistry;
use bcbpt_core::{
    merge_shards, run_shard_in, CellShard, PartialOutcome, RunEvent, Scenario, ScenarioOutcome,
    ShardSpec, StopRule,
};
use std::fs;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

/// Flags shared by `run`, `quick` and the `shard` subcommands.
#[derive(Default)]
struct Options {
    quick: bool,
    json: bool,
    progress: bool,
    jsonl: Option<String>,
    stop_ci: Option<f64>,
    threads: Option<usize>,
    shard: Option<String>,
    out: Option<String>,
}

impl Options {
    /// Fails when a flag that only another subcommand honours was given —
    /// a silently ignored flag makes the driver do something expensively
    /// different from what the operator asked for (e.g. `scenario run
    /// --shard 0/2` without the `shard` word would run the whole
    /// campaign).
    fn reject_unused(&self, command: &str, unused: &[(&str, bool)]) -> Result<(), String> {
        for (flag, given) in unused {
            if *given {
                return Err(usage(&format!(
                    "{flag} does not apply to `scenario {command}`"
                )));
            }
        }
        Ok(())
    }

    /// `run`/`quick` must not swallow the sharding flags.
    fn reject_shard_flags(&self, command: &str) -> Result<(), String> {
        self.reject_unused(
            command,
            &[
                ("--shard", self.shard.is_some()),
                ("--out", self.out.is_some()),
            ],
        )
    }

    /// The inspection subcommands (`list`, `export`, `parse`, `events`)
    /// take no flags at all.
    fn reject_every_flag(&self, command: &str) -> Result<(), String> {
        self.reject_unused(
            command,
            &[
                ("--quick", self.quick),
                ("--json", self.json),
                ("--progress", self.progress),
                ("--jsonl", self.jsonl.is_some()),
                ("--stop-ci", self.stop_ci.is_some()),
                ("--threads", self.threads.is_some()),
                ("--shard", self.shard.is_some()),
                ("--out", self.out.is_some()),
            ],
        )
    }
}

fn main() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let options = Options {
        quick: take_flag(&mut args, "--quick"),
        json: take_flag(&mut args, "--json"),
        progress: take_flag(&mut args, "--progress"),
        jsonl: take_value(&mut args, "--jsonl")?,
        stop_ci: take_value(&mut args, "--stop-ci")?
            .map(|w| {
                w.parse::<f64>()
                    .map_err(|e| format!("--stop-ci {w:?}: {e}"))
            })
            .transpose()?,
        threads: take_value(&mut args, "--threads")?
            .map(|n| {
                n.parse::<usize>()
                    .map_err(|e| format!("--threads {n:?}: {e}"))
            })
            .transpose()?,
        shard: take_value(&mut args, "--shard")?,
        out: take_value(&mut args, "--out")?,
    };
    match args.split_first() {
        Some((cmd, rest)) if cmd == "run" => {
            options.reject_shard_flags(cmd)?;
            run_all(rest, options)
        }
        Some((cmd, rest)) if cmd == "quick" => match rest {
            // run_all attaches the scenario name to any error.
            [_name] => {
                options.reject_shard_flags(cmd)?;
                run_all(
                    rest,
                    Options {
                        quick: true,
                        ..options
                    },
                )
            }
            _ => Err(usage("quick takes exactly one built-in scenario name")),
        },
        Some((cmd, rest)) if cmd == "list" && rest.is_empty() => {
            options.reject_every_flag(cmd)?;
            list();
            Ok(())
        }
        Some((cmd, rest)) if cmd == "export" => {
            options.reject_every_flag(cmd)?;
            match rest {
                [dir] => export(dir),
                _ => Err(usage("export takes exactly one target directory")),
            }
        }
        Some((cmd, rest)) if cmd == "parse" => {
            options.reject_every_flag(cmd)?;
            match rest {
                [path] => parse_outcome(path),
                _ => Err(usage("parse takes exactly one outcome file")),
            }
        }
        Some((cmd, rest)) if cmd == "events" => {
            options.reject_every_flag(cmd)?;
            match rest {
                [path] => check_events(path),
                _ => Err(usage("events takes exactly one JSONL file")),
            }
        }
        Some((cmd, rest)) if cmd == "shard" => match rest.split_first() {
            Some((sub, rest)) if sub == "run" => match rest {
                [spec] => shard_run(spec, &options),
                _ => Err(usage(
                    "shard run takes exactly one scenario file or built-in name",
                )),
            },
            Some((sub, rest)) if sub == "merge" && !rest.is_empty() => shard_merge(rest, &options),
            _ => Err(usage(
                "shard takes `run <file|name> --shard i/N --out <path>` or `merge <part>...`",
            )),
        },
        _ => Err(usage("missing or unknown subcommand")),
    }
}

fn usage(problem: &str) -> String {
    format!(
        "{problem}\n\
         usage: scenario run <file.json|name>... [--quick] [--json] [--progress]\n\
         \x20                [--jsonl <path>] [--stop-ci <rel_width>] [--threads <n>]\n\
         \x20      scenario quick <name> [same options]\n\
         \x20      scenario list\n\
         \x20      scenario export <dir>\n\
         \x20      scenario parse <outcome.json>\n\
         \x20      scenario events <events.jsonl>\n\
         \x20      scenario shard run <file.json|name> --shard i/N --out part-i.json\n\
         \x20                [--quick] [--threads <n>]\n\
         \x20      scenario shard merge <part.json>... [--json]"
    )
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Removes `flag <value>` from `args`, returning the value.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(usage(&format!("{flag} needs a value")));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

/// Loads a scenario from a file path, or resolves a built-in name.
fn load(spec: &str) -> Result<Scenario, String> {
    if std::path::Path::new(spec).is_file() {
        let text = fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        return Scenario::from_json(&text).map_err(|e| format!("{spec}: {e}"));
    }
    Scenario::builtin(spec).ok_or_else(|| {
        format!(
            "{spec:?} is neither a scenario file nor a built-in name (known: {})",
            Scenario::builtin_names().join(", ")
        )
    })
}

fn run_all(specs: &[String], options: Options) -> Result<(), String> {
    if specs.is_empty() {
        return Err(usage(
            "run needs at least one scenario file or built-in name",
        ));
    }
    let jsonl = options.jsonl.as_deref().map(JsonlSink::open).transpose()?;
    for spec in specs {
        let mut scenario = load(spec)?;
        if options.quick {
            scenario = scenario.quick_scaled();
        }
        execute(&scenario, &options, jsonl.clone()).map_err(|e| format!("{spec}: {e}"))?;
        if let Some(error) = jsonl.as_ref().and_then(|sink| sink.take_error()) {
            return Err(format!("--jsonl stream truncated: {error}"));
        }
    }
    Ok(())
}

/// Live progress observer: one stderr line per cell, updated in place as
/// runs fold.
fn progress_observer() -> impl FnMut(&RunEvent) + Send {
    move |event: &RunEvent| match event {
        RunEvent::CellStarted {
            label,
            planned_runs,
            ..
        } => {
            eprint!("  {label}: 0/{planned_runs} runs");
        }
        RunEvent::RunCompleted {
            run_index,
            run_stats,
            ..
        } => {
            eprint!(
                "\r  run {}: {} runs folded, {} samples, mean {:.2} ms (sd {:.2})      ",
                run_index,
                run_stats.measured_runs,
                run_stats.pooled_samples,
                run_stats.pooled_mean_ms,
                run_stats.pooled_std_dev_ms,
            );
        }
        RunEvent::CellCompleted {
            report,
            runs_used,
            stopped_early,
            ..
        } => {
            eprintln!(
                "\r  {}: done after {runs_used} run(s){}                      ",
                report.label,
                if *stopped_early {
                    " — stop rule fired early"
                } else {
                    ""
                }
            );
        }
        RunEvent::CellFailed { label, error, .. } => {
            eprintln!("\r  {label}: FAILED — {error}");
        }
        RunEvent::ScenarioCompleted {
            scenario,
            cells,
            failed_cells,
        } => {
            eprintln!("  {scenario}: {cells} cell(s), {failed_cells} failed");
        }
    }
}

/// The `--jsonl` sink, opened once per invocation so a multi-scenario
/// `run` appends every scenario's events to one stream instead of
/// truncating the file per scenario.
struct JsonlSink {
    writer: Mutex<std::io::BufWriter<fs::File>>,
    path: String,
    /// First write/flush error. Observers run inside the campaign's fold
    /// lock, so an I/O failure (disk full, dead filesystem) must not
    /// panic there: the sink records it, stops writing, and the driver
    /// turns it into a normal `Err` after the scenario.
    error: Mutex<Option<String>>,
}

impl JsonlSink {
    fn open(path: &str) -> Result<Arc<Self>, String> {
        let file = fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        Ok(Arc::new(JsonlSink {
            writer: Mutex::new(std::io::BufWriter::new(file)),
            path: path.to_string(),
            error: Mutex::new(None),
        }))
    }

    fn record_error(&self, e: &std::io::Error) {
        let mut slot = self.error.lock().expect("jsonl error lock");
        if slot.is_none() {
            *slot = Some(format!("{}: {e}", self.path));
        }
    }

    /// The first write/flush error, if any (the stream is then truncated).
    fn take_error(&self) -> Option<String> {
        self.error.lock().expect("jsonl error lock").take()
    }
}

/// JSONL observer: one serialized event per line, flushed at the end of
/// each scenario.
fn jsonl_observer(sink: Arc<JsonlSink>) -> impl FnMut(&RunEvent) + Send {
    move |event: &RunEvent| {
        if sink.error.lock().expect("jsonl error lock").is_some() {
            return;
        }
        let line = serde_json::to_string(event).expect("event serializes");
        let mut writer = sink.writer.lock().expect("jsonl writer lock");
        let result = writeln!(writer, "{line}").and_then(|()| {
            if matches!(event, RunEvent::ScenarioCompleted { .. }) {
                writer.flush()
            } else {
                Ok(())
            }
        });
        drop(writer);
        if let Err(e) = result {
            sink.record_error(&e);
        }
    }
}

fn execute(
    scenario: &Scenario,
    options: &Options,
    jsonl: Option<Arc<JsonlSink>>,
) -> Result<(), String> {
    let stop = match options.stop_ci {
        Some(rel_width) => StopRule::CiHalfWidth {
            level: 0.95,
            rel_width,
            min_runs: 2,
        },
        None => scenario.stop.unwrap_or_default(),
    };
    eprintln!(
        "scenario {}: {} workload, {} cell(s), {} nodes, {} runs ({}), seed {:#x}",
        scenario.name,
        scenario.workload.kind(),
        scenario.cells().len(),
        scenario.net.num_nodes,
        scenario.runs,
        stop.label(),
        scenario.seed,
    );
    let mut session = scenario.session().with_stop_rule(stop);
    if let Some(threads) = options.threads {
        session = session.with_threads(threads);
    }
    if options.progress {
        session = session.observe_fn(progress_observer());
    }
    if let Some(sink) = jsonl {
        session = session.observe_fn(jsonl_observer(sink));
    }
    let outcome = session.block()?;
    if options.json {
        println!("{}", outcome.to_json());
    } else {
        println!("{}", outcome.render());
    }
    report_degenerate_cells(&outcome)
}

/// Degenerate cells (run-time failures, sample-free campaigns) are
/// recorded in the outcome so surviving cells still print, but the
/// driver must not report success for them.
fn report_degenerate_cells(outcome: &ScenarioOutcome) -> Result<(), String> {
    let failed: Vec<String> = outcome
        .cell_errors()
        .into_iter()
        .map(|(label, error)| format!("{label}: {error}"))
        .collect();
    if !failed.is_empty() {
        return Err(format!(
            "{} of {} cell(s) degenerate — {}",
            failed.len(),
            outcome.cells.len(),
            failed.join("; ")
        ));
    }
    Ok(())
}

/// `shard run <file|name> --shard i/N --out <path>`: execute one shard of
/// a campaign and write its `PartialOutcome` as JSON.
fn shard_run(spec: &str, options: &Options) -> Result<(), String> {
    let shard = options
        .shard
        .as_deref()
        .ok_or_else(|| usage("shard run needs --shard i/N"))?;
    let shard = ShardSpec::parse(shard)?;
    let out = options
        .out
        .as_deref()
        .ok_or_else(|| usage("shard run needs --out <part.json>"))?;
    if options.stop_ci.is_some() {
        return Err(usage(
            "--stop-ci cannot combine with shard run (a shard never sees the folded \
             prefix an adaptive stop rule needs)",
        ));
    }
    options.reject_unused(
        "shard run",
        &[
            ("--json", options.json),
            ("--progress", options.progress),
            ("--jsonl", options.jsonl.is_some()),
        ],
    )?;
    let mut scenario = load(spec)?;
    if options.quick {
        scenario = scenario.quick_scaled();
    }
    let threads = options
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let part = run_shard_in(&scenario, shard, &ProtocolRegistry::builtins(), threads)
        .map_err(|e| format!("{spec}: {e}"))?;
    fs::write(out, format!("{}\n", part.to_json())).map_err(|e| format!("{out}: {e}"))?;
    // Say what actually executed: for an indivisible workload the planned
    // run range is meaningless — shard 0 ran every cell whole and other
    // shards ran nothing.
    let divisible = part
        .cells
        .iter()
        .any(|c| matches!(c.part, CellShard::Campaign { .. }));
    if divisible {
        eprintln!(
            "shard {shard} of {}: runs {}..{} ({} cell(s), {} run(s) used) -> {out}",
            scenario.name,
            part.plan.run_start,
            part.plan.run_end,
            part.cells.len(),
            part.runs_used(),
        );
    } else if shard.index == 0 {
        eprintln!(
            "shard {shard} of {}: indivisible {} workload — executed all {} cell(s) whole \
             on this shard -> {out}",
            scenario.name,
            scenario.workload.kind(),
            part.cells.len(),
        );
    } else {
        eprintln!(
            "shard {shard} of {}: indivisible {} workload — deferred to shard 0, nothing \
             executed here -> {out}",
            scenario.name,
            scenario.workload.kind(),
        );
    }
    Ok(())
}

/// `shard merge <part.json>...`: merge shard parts — passed in ascending
/// shard order (`part-0.json part-1.json …`; a sorted shell glob works up
/// to 10 shards) — and print the merged `ScenarioOutcome` exactly like
/// `scenario run` would.
fn shard_merge(paths: &[String], options: &Options) -> Result<(), String> {
    options.reject_unused(
        "shard merge",
        &[
            ("--quick", options.quick),
            ("--progress", options.progress),
            ("--jsonl", options.jsonl.is_some()),
            ("--stop-ci", options.stop_ci.is_some()),
            ("--threads", options.threads.is_some()),
            ("--shard", options.shard.is_some()),
            ("--out", options.out.is_some()),
        ],
    )?;
    let mut parts = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parts.push(PartialOutcome::from_json(&text).map_err(|e| format!("{path}: {e}"))?);
    }
    let part_count = parts.len();
    let outcome = merge_shards(parts)?;
    eprintln!(
        "merged {part_count} shard(s) of {}: {} cell(s)",
        outcome.scenario,
        outcome.cells.len()
    );
    if options.json {
        println!("{}", outcome.to_json());
    } else {
        println!("{}", outcome.render());
    }
    report_degenerate_cells(&outcome)
}

fn list() {
    println!("built-in scenarios (scenario quick <name>, full scale in scenarios/<name>.json):");
    for name in Scenario::builtin_names() {
        let scenario = Scenario::builtin(name).expect("listed names resolve");
        let axes = scenario
            .sweep
            .as_ref()
            .map_or_else(|| "single cell".to_string(), |sweep| sweep.describe());
        println!(
            "  {name:<10} {:<15} {:<14} {}",
            scenario.workload.kind(),
            axes,
            Scenario::builtin_description(name).expect("listed names are described"),
        );
    }
}

fn export(dir: &str) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    for name in Scenario::builtin_names() {
        let scenario = Scenario::builtin(name).expect("listed names resolve");
        let path = format!("{dir}/{name}.json");
        fs::write(&path, format!("{}\n", scenario.to_json()))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn parse_outcome(path: &str) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let outcome = ScenarioOutcome::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "outcome {:?}: {} workload, {} cell(s)",
        outcome.scenario,
        outcome.workload.kind(),
        outcome.cells.len()
    );
    Ok(())
}

/// Validates a `--jsonl` event stream: every line parses as a
/// [`RunEvent`], every started cell is closed (completed or failed)
/// before its scenario's `ScenarioCompleted`, and the stream ends with a
/// `ScenarioCompleted` — the session's completion guarantee, checked per
/// scenario segment so a truncated multi-scenario stream cannot pass on
/// the strength of an earlier scenario's terminator.
fn check_events(path: &str) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut open_cells: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    let mut last: Option<RunEvent> = None;
    let mut count = 0usize;
    let mut scenarios = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |what: &str| format!("{path}:{}: {what}", lineno + 1);
        let event: RunEvent = serde_json::from_str(line).map_err(|e| at(&format!("{e}")))?;
        count += 1;
        match &event {
            RunEvent::CellStarted { cell, .. } => {
                if !open_cells.insert(*cell) {
                    return Err(at(&format!("cell {cell} started twice")));
                }
            }
            RunEvent::RunCompleted { cell, .. } => {
                if !open_cells.contains(cell) {
                    return Err(at(&format!("run event for cell {cell} that never started")));
                }
            }
            RunEvent::CellCompleted { cell, .. } | RunEvent::CellFailed { cell, .. } => {
                if !open_cells.remove(cell) {
                    return Err(at(&format!("cell {cell} closed without starting")));
                }
            }
            RunEvent::ScenarioCompleted { .. } => {
                if !open_cells.is_empty() {
                    return Err(at(&format!(
                        "scenario completed with {} cell(s) still open",
                        open_cells.len()
                    )));
                }
                scenarios += 1;
            }
        }
        last = Some(event);
    }
    match last {
        Some(RunEvent::ScenarioCompleted {
            scenario,
            cells,
            failed_cells,
        }) => {
            println!(
                "events {path}: {count} event(s), {scenarios} scenario(s), last {scenario:?} \
                 completed ({cells} cell(s), {failed_cells} failed)"
            );
            Ok(())
        }
        Some(other) => Err(format!(
            "{path}: stream ends with {:?}, not scenario_completed — the run was cut short",
            other.kind()
        )),
        None => Err(format!("{path}: no events")),
    }
}
