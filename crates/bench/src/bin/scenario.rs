//! The one experiment driver: runs declarative scenario files.
//!
//! Replaces the old per-figure binaries (`fig3`, `fig4`, `sweep`, `forks`,
//! `attacks`, `overhead`): every experiment is a JSON [`Scenario`] under
//! `scenarios/`, and this binary loads, validates and runs it.
//!
//! Usage:
//!
//! ```text
//! scenario run <file.json>... [--json]   # run scenario files
//! scenario quick <name> [--json]         # run a built-in at CI scale
//! scenario list                          # list built-ins and their files
//! scenario export <dir>                  # write built-ins as JSON files
//! scenario parse <outcome.json>          # check an outcome file parses
//! ```
//!
//! `--json` prints the [`ScenarioOutcome`] as JSON instead of the rendered
//! figure/table text, for machine consumption.

use bcbpt_core::{Scenario, ScenarioOutcome};
use std::fs;

fn main() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_flag(&mut args, "--json");
    match args.split_first() {
        Some((cmd, rest)) if cmd == "run" => run_files(rest, json),
        Some((cmd, rest)) if cmd == "quick" => match rest {
            [name] => run_quick(name, json),
            _ => Err(usage("quick takes exactly one built-in scenario name")),
        },
        Some((cmd, rest)) if cmd == "list" && rest.is_empty() => {
            list();
            Ok(())
        }
        Some((cmd, rest)) if cmd == "export" => match rest {
            [dir] => export(dir),
            _ => Err(usage("export takes exactly one target directory")),
        },
        Some((cmd, rest)) if cmd == "parse" => match rest {
            [path] => parse_outcome(path),
            _ => Err(usage("parse takes exactly one outcome file")),
        },
        _ => Err(usage("missing or unknown subcommand")),
    }
}

fn usage(problem: &str) -> String {
    format!(
        "{problem}\n\
         usage: scenario run <file.json>... [--json]\n\
         \x20      scenario quick <name> [--json]\n\
         \x20      scenario list\n\
         \x20      scenario export <dir>\n\
         \x20      scenario parse <outcome.json>"
    )
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

fn run_files(paths: &[String], json: bool) -> Result<(), String> {
    if paths.is_empty() {
        return Err(usage("run needs at least one scenario file"));
    }
    for path in paths {
        let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let scenario = Scenario::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        // Scenario::run validates; just attach the file to any error.
        execute(&scenario, json).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

fn run_quick(name: &str, json: bool) -> Result<(), String> {
    let scenario = Scenario::builtin(name)
        .ok_or_else(|| {
            format!(
                "unknown built-in scenario {name:?} (known: {})",
                Scenario::builtin_names().join(", ")
            )
        })?
        .quick_scaled();
    execute(&scenario, json)
}

fn execute(scenario: &Scenario, json: bool) -> Result<(), String> {
    eprintln!(
        "scenario {}: {} workload, {} cell(s), {} nodes, {} runs, seed {:#x}",
        scenario.name,
        scenario.workload.kind(),
        scenario.cells().len(),
        scenario.net.num_nodes,
        scenario.runs,
        scenario.seed,
    );
    let outcome = scenario.run()?;
    if json {
        println!("{}", outcome.to_json());
    } else {
        println!("{}", outcome.render());
    }
    // Degenerate cells (run-time failures, sample-free campaigns) are
    // recorded in the outcome so surviving cells still print, but the
    // driver must not report success for them.
    let failed: Vec<String> = outcome
        .cell_errors()
        .into_iter()
        .map(|(label, error)| format!("{label}: {error}"))
        .collect();
    if !failed.is_empty() {
        return Err(format!(
            "{} of {} cell(s) degenerate — {}",
            failed.len(),
            outcome.cells.len(),
            failed.join("; ")
        ));
    }
    Ok(())
}

fn list() {
    println!("built-in scenarios (scenario quick <name>, full scale in scenarios/<name>.json):");
    for name in Scenario::builtin_names() {
        let scenario = Scenario::builtin(name).expect("listed names resolve");
        let axes = scenario
            .sweep
            .as_ref()
            .map_or_else(|| "single cell".to_string(), |sweep| sweep.describe());
        println!(
            "  {name:<10} {:<15} {:<14} {}",
            scenario.workload.kind(),
            axes,
            Scenario::builtin_description(name).expect("listed names are described"),
        );
    }
}

fn export(dir: &str) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    for name in Scenario::builtin_names() {
        let scenario = Scenario::builtin(name).expect("listed names resolve");
        let path = format!("{dir}/{name}.json");
        fs::write(&path, format!("{}\n", scenario.to_json()))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn parse_outcome(path: &str) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let outcome = ScenarioOutcome::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "outcome {:?}: {} workload, {} cell(s)",
        outcome.scenario,
        outcome.workload.kind(),
        outcome.cells.len()
    );
    Ok(())
}
