//! The one experiment driver: runs declarative scenario files through the
//! streaming session API.
//!
//! Replaces the old per-figure binaries (`fig3`, `fig4`, `sweep`, `forks`,
//! `attacks`, `overhead`): every experiment is a JSON [`Scenario`] under
//! `scenarios/`, and this binary loads, validates and runs it — with live
//! progress, a machine-readable JSONL event stream, and adaptive stopping
//! on top of the [`bcbpt_core::ScenarioSession`] API.
//!
//! Usage:
//!
//! ```text
//! scenario run <file.json|name>... [options]   # run scenario files or built-ins
//! scenario quick <name> [options]              # run a built-in at CI scale
//! scenario list                                # list built-ins and their files
//! scenario export <dir>                        # write built-ins as JSON files
//! scenario parse <outcome.json>                # check an outcome file parses
//! scenario events <events.jsonl>               # check a JSONL event stream
//! scenario shard run <file.json|name> --shard i/N --out part-i.json
//!                                              # execute one shard of a campaign
//! scenario shard merge <part.json>...          # merge shard parts (in shard order)
//! scenario shard coordinate <file.json|name> --shards N [--addr host:port]
//!                                              # serve the adaptive-stop coordinator
//! scenario serve [--addr host:port] [--spool dir] [--workers n]
//!                                              # run the campaign service (bcbpt-serve)
//! scenario submit <file.json|name> [--wait]    # submit to a running service
//!
//! options:
//!   --quick             shrink to CI scale (implied by `quick`)
//!   --json              print the ScenarioOutcome as JSON, not rendered text
//!   --progress          live per-cell run counts on stderr
//!   --jsonl <path>      write one serialized RunEvent per line to <path>
//!                       (written as <path>.tmp, renamed on completion)
//!   --stop-ci <w>       stop each cell once the Δt mean is known to ±w
//!                       (relative, 95% CI) instead of burning all runs
//!   --threads <n>       worker threads (output is identical for any value,
//!                       except under a wall-clock stop rule)
//!   --shard i/N         which shard of how many (shard run only)
//!   --out <path>        where to write the shard part (shard run only)
//!   --checkpoint <path> persist a digest-sealed checkpoint of the folded
//!                       prefix to <path> as the shard runs (shard run only)
//!   --checkpoint-every <n>  folds between checkpoints (default 1)
//!   --resume            continue from --checkpoint's file if it exists
//!   --inject-fault <json>   arm a deterministic FaultPlan, e.g.
//!                       '{"DieAfterRuns":{"n":3}}' (fault-injection builds)
//!   --salvage           shard merge only: quarantine bad parts, merge the
//!                       rest, print a repair plan if incomplete
//!   --coordinate <addr> shard run only: submit folded prefixes to the
//!                       adaptive-stop coordinator at <addr> and truncate
//!                       to its broadcast stop decision
//!   --cadence <n>       shard coordinate only: evaluate the stop rule
//!                       every <n> global run indices (default 1)
//! ```

use bcbpt_cluster::ProtocolRegistry;
use bcbpt_core::{
    merge_shards, run_shard_with, salvage_merge, Checkpoint, CheckpointSink, FaultPlan,
    LocalCoordinator, PartialOutcome, RunEvent, Scenario, ScenarioOutcome, ShardRunOptions,
    ShardSpec, StopCoordinator, StopRule, WarmCache,
};
use bcbpt_serve::{client, CoordClient, CoordServer, ServeConfig, Server};
use std::fs;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

#[cfg(feature = "fault-injection")]
use bcbpt_core::fault;

/// Flags shared by `run`, `quick`, the `shard` subcommands and the
/// service subcommands (`serve`, `submit`).
#[derive(Default)]
struct Options {
    quick: bool,
    json: bool,
    progress: bool,
    jsonl: Option<String>,
    stop_ci: Option<f64>,
    threads: Option<usize>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    shard: Option<String>,
    out: Option<String>,
    checkpoint: Option<String>,
    checkpoint_every: Option<usize>,
    resume: bool,
    inject_fault: Option<String>,
    salvage: bool,
    coordinate: Option<String>,
    cadence: Option<usize>,
    addr: Option<String>,
    spool: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    warm: Option<usize>,
    shards: Option<usize>,
    wait: bool,
}

impl Options {
    /// Fails when a flag that only another subcommand honours was given —
    /// a silently ignored flag makes the driver do something expensively
    /// different from what the operator asked for (e.g. `scenario run
    /// --shard 0/2` without the `shard` word would run the whole
    /// campaign).
    fn reject_unused(&self, command: &str, unused: &[(&str, bool)]) -> Result<(), String> {
        for (flag, given) in unused {
            if *given {
                return Err(usage(&format!(
                    "{flag} does not apply to `scenario {command}`"
                )));
            }
        }
        Ok(())
    }

    /// The observability output flags, honoured by `run`, `quick` and
    /// `shard run` (the subcommands that execute campaigns in-process)
    /// and rejected everywhere else.
    fn obs_flags(&self) -> [(&'static str, bool); 2] {
        [
            ("--metrics-out", self.metrics_out.is_some()),
            ("--trace-out", self.trace_out.is_some()),
        ]
    }

    /// The service flags, rejected by everything except `serve`/`submit`.
    fn service_flags(&self) -> [(&'static str, bool); 7] {
        [
            ("--addr", self.addr.is_some()),
            ("--spool", self.spool.is_some()),
            ("--workers", self.workers.is_some()),
            ("--queue", self.queue.is_some()),
            ("--warm", self.warm.is_some()),
            ("--shards", self.shards.is_some()),
            ("--wait", self.wait),
        ]
    }

    /// `run`/`quick` must not swallow the sharding/recovery/service flags.
    fn reject_shard_flags(&self, command: &str) -> Result<(), String> {
        self.reject_unused(
            command,
            &[
                ("--shard", self.shard.is_some()),
                ("--out", self.out.is_some()),
                ("--checkpoint", self.checkpoint.is_some()),
                ("--checkpoint-every", self.checkpoint_every.is_some()),
                ("--resume", self.resume),
                ("--inject-fault", self.inject_fault.is_some()),
                ("--salvage", self.salvage),
                ("--coordinate", self.coordinate.is_some()),
                ("--cadence", self.cadence.is_some()),
            ],
        )?;
        self.reject_unused(command, &self.service_flags())
    }

    /// The inspection subcommands (`list`, `export`, `parse`, `events`)
    /// take no flags at all.
    fn reject_every_flag(&self, command: &str) -> Result<(), String> {
        self.reject_unused(command, &self.obs_flags())?;
        self.reject_unused(
            command,
            &[
                ("--quick", self.quick),
                ("--json", self.json),
                ("--progress", self.progress),
                ("--jsonl", self.jsonl.is_some()),
                ("--stop-ci", self.stop_ci.is_some()),
                ("--threads", self.threads.is_some()),
                ("--shard", self.shard.is_some()),
                ("--out", self.out.is_some()),
                ("--checkpoint", self.checkpoint.is_some()),
                ("--checkpoint-every", self.checkpoint_every.is_some()),
                ("--resume", self.resume),
                ("--inject-fault", self.inject_fault.is_some()),
                ("--salvage", self.salvage),
                ("--coordinate", self.coordinate.is_some()),
                ("--cadence", self.cadence.is_some()),
            ],
        )?;
        self.reject_unused(command, &self.service_flags())
    }
}

fn main() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let options = Options {
        quick: take_flag(&mut args, "--quick"),
        json: take_flag(&mut args, "--json"),
        progress: take_flag(&mut args, "--progress"),
        jsonl: take_value(&mut args, "--jsonl")?,
        stop_ci: take_value(&mut args, "--stop-ci")?
            .map(|w| {
                w.parse::<f64>()
                    .map_err(|e| format!("--stop-ci {w:?}: {e}"))
            })
            .transpose()?,
        threads: take_value(&mut args, "--threads")?
            .map(|n| {
                n.parse::<usize>()
                    .map_err(|e| format!("--threads {n:?}: {e}"))
            })
            .transpose()?,
        metrics_out: take_value(&mut args, "--metrics-out")?,
        trace_out: take_value(&mut args, "--trace-out")?,
        shard: take_value(&mut args, "--shard")?,
        out: take_value(&mut args, "--out")?,
        checkpoint: take_value(&mut args, "--checkpoint")?,
        checkpoint_every: take_value(&mut args, "--checkpoint-every")?
            .map(|n| {
                n.parse::<usize>()
                    .map_err(|e| format!("--checkpoint-every {n:?}: {e}"))
            })
            .transpose()?,
        resume: take_flag(&mut args, "--resume"),
        inject_fault: take_value(&mut args, "--inject-fault")?,
        salvage: take_flag(&mut args, "--salvage"),
        coordinate: take_value(&mut args, "--coordinate")?,
        cadence: take_value(&mut args, "--cadence")?
            .map(|n| {
                n.parse::<usize>()
                    .map_err(|e| format!("--cadence {n:?}: {e}"))
            })
            .transpose()?,
        addr: take_value(&mut args, "--addr")?,
        spool: take_value(&mut args, "--spool")?,
        workers: take_value(&mut args, "--workers")?
            .map(|n| {
                n.parse::<usize>()
                    .map_err(|e| format!("--workers {n:?}: {e}"))
            })
            .transpose()?,
        queue: take_value(&mut args, "--queue")?
            .map(|n| {
                n.parse::<usize>()
                    .map_err(|e| format!("--queue {n:?}: {e}"))
            })
            .transpose()?,
        warm: take_value(&mut args, "--warm")?
            .map(|n| n.parse::<usize>().map_err(|e| format!("--warm {n:?}: {e}")))
            .transpose()?,
        shards: take_value(&mut args, "--shards")?
            .map(|n| {
                n.parse::<usize>()
                    .map_err(|e| format!("--shards {n:?}: {e}"))
            })
            .transpose()?,
        wait: take_flag(&mut args, "--wait"),
    };
    match args.split_first() {
        Some((cmd, rest)) if cmd == "run" => {
            options.reject_shard_flags(cmd)?;
            run_all(rest, options)
        }
        Some((cmd, rest)) if cmd == "quick" => match rest {
            // run_all attaches the scenario name to any error.
            [_name] => {
                options.reject_shard_flags(cmd)?;
                run_all(
                    rest,
                    Options {
                        quick: true,
                        ..options
                    },
                )
            }
            _ => Err(usage("quick takes exactly one built-in scenario name")),
        },
        Some((cmd, rest)) if cmd == "list" && rest.is_empty() => {
            options.reject_every_flag(cmd)?;
            list();
            Ok(())
        }
        Some((cmd, rest)) if cmd == "export" => {
            options.reject_every_flag(cmd)?;
            match rest {
                [dir] => export(dir),
                _ => Err(usage("export takes exactly one target directory")),
            }
        }
        Some((cmd, rest)) if cmd == "parse" => {
            options.reject_every_flag(cmd)?;
            match rest {
                [path] => parse_outcome(path),
                _ => Err(usage("parse takes exactly one outcome file")),
            }
        }
        Some((cmd, rest)) if cmd == "events" => {
            options.reject_every_flag(cmd)?;
            match rest {
                [path] => check_events(path),
                _ => Err(usage("events takes exactly one JSONL file")),
            }
        }
        Some((cmd, rest)) if cmd == "serve" && rest.is_empty() => serve(&options),
        Some((cmd, rest)) if cmd == "submit" => match rest {
            [spec] => submit(spec, &options),
            _ => Err(usage(
                "submit takes exactly one scenario file or built-in name",
            )),
        },
        Some((cmd, rest)) if cmd == "shard" => match rest.split_first() {
            Some((sub, rest)) if sub == "run" => match rest {
                [spec] => shard_run(spec, &options),
                _ => Err(usage(
                    "shard run takes exactly one scenario file or built-in name",
                )),
            },
            Some((sub, rest)) if sub == "merge" && !rest.is_empty() => shard_merge(rest, &options),
            Some((sub, rest)) if sub == "coordinate" => match rest {
                [spec] => shard_coordinate(spec, &options),
                _ => Err(usage(
                    "shard coordinate takes exactly one scenario file or built-in name",
                )),
            },
            _ => Err(usage(
                "shard takes `run <file|name> --shard i/N --out <path>`, `merge <part>...` \
                 or `coordinate <file|name> --shards N`",
            )),
        },
        _ => Err(usage("missing or unknown subcommand")),
    }
}

fn usage(problem: &str) -> String {
    format!(
        "{problem}\n\
         usage: scenario run <file.json|name>... [--quick] [--json] [--progress]\n\
         \x20                [--jsonl <path>] [--stop-ci <rel_width>] [--threads <n>]\n\
         \x20                [--metrics-out <path>] [--trace-out <path>]\n\
         \x20      scenario quick <name> [same options]\n\
         \x20      scenario list\n\
         \x20      scenario export <dir>\n\
         \x20      scenario parse <outcome.json>\n\
         \x20      scenario events <events.jsonl>\n\
         \x20      scenario shard run <file.json|name> --shard i/N --out part-i.json\n\
         \x20                [--quick] [--threads <n>] [--checkpoint <path>]\n\
         \x20                [--checkpoint-every <n>] [--resume] [--inject-fault <json>]\n\
         \x20                [--coordinate host:port] [--stop-ci <rel_width>]\n\
         \x20                [--metrics-out <path>] [--trace-out <path>]\n\
         \x20      scenario shard merge <part.json>... [--json] [--salvage]\n\
         \x20      scenario shard coordinate <file.json|name> --shards <n>\n\
         \x20                [--addr host:port] [--cadence <n>] [--quick]\n\
         \x20                [--stop-ci <rel_width>]\n\
         \x20      scenario serve [--addr host:port] [--spool <dir>] [--workers <n>]\n\
         \x20                [--queue <n>] [--warm <n>] [--checkpoint-every <n>]\n\
         \x20      scenario submit <file.json|name> [--addr host:port] [--quick]\n\
         \x20                [--shards <n>] [--wait] [--json]"
    )
}

/// Bounded retry with backoff for transient I/O failures: the initial
/// attempt plus three retries, sleeping 10/50/250 ms before each retry.
/// The final failure's error is returned verbatim.
fn with_io_retry<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    let mut backoff_ms = [10u64, 50, 250].into_iter();
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(e) => match backoff_ms.next() {
                Some(ms) => {
                    bcbpt_obs::debug!("transient I/O failure ({e}); retrying in {ms} ms");
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                None => return Err(e),
            },
        }
    }
}

/// Arms the observability outputs a campaign-executing subcommand asked
/// for: pre-registers every metric family (so `--metrics-out` lists the
/// full set even for families the run never touches) and starts span
/// recording for `--trace-out`.
fn obs_begin(options: &Options) {
    if options.metrics_out.is_some() {
        bcbpt_core::obs::register_metrics();
    }
    if options.trace_out.is_some() {
        bcbpt_obs::install_trace();
    }
}

/// Writes the outputs [`obs_begin`] armed: the metrics snapshot as JSON
/// and the recorded spans as a Chrome-trace document (`chrome://tracing`
/// / Perfetto). Called after the campaign completed — worker threads are
/// joined by then, so every thread-local span buffer has flushed.
fn obs_finish(options: &Options) -> Result<(), String> {
    if let Some(path) = options.trace_out.as_deref() {
        let spans = bcbpt_obs::take_trace();
        atomic_write(path, bcbpt_obs::chrome_trace_json(&spans).as_bytes())?;
        bcbpt_obs::info!("wrote {} span(s) to {path}", spans.len());
    }
    if let Some(path) = options.metrics_out.as_deref() {
        let snapshot = bcbpt_obs::global().snapshot();
        let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
        atomic_write(path, json.as_bytes())?;
        bcbpt_obs::info!("wrote metrics snapshot to {path}");
    }
    Ok(())
}

/// Durable file write: temp file next to the target, then atomic rename —
/// a crash mid-write leaves the old file (or nothing), never a torn one.
/// Both steps ride the bounded retry.
fn atomic_write(path: &str, contents: &[u8]) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    with_io_retry(|| fs::write(&tmp, contents)).map_err(|e| format!("{tmp}: {e}"))?;
    with_io_retry(|| fs::rename(&tmp, path)).map_err(|e| format!("{path}: {e}"))?;
    Ok(())
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Removes `flag <value>` from `args`, returning the value.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(usage(&format!("{flag} needs a value")));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

/// Loads a scenario from a file path, or resolves a built-in name.
fn load(spec: &str) -> Result<Scenario, String> {
    if std::path::Path::new(spec).is_file() {
        let text = fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        return Scenario::from_json(&text).map_err(|e| format!("{spec}: {e}"));
    }
    Scenario::builtin(spec).ok_or_else(|| {
        format!(
            "{spec:?} is neither a scenario file nor a built-in name (known: {})",
            Scenario::builtin_names().join(", ")
        )
    })
}

fn run_all(specs: &[String], options: Options) -> Result<(), String> {
    if specs.is_empty() {
        return Err(usage(
            "run needs at least one scenario file or built-in name",
        ));
    }
    let jsonl = options.jsonl.as_deref().map(JsonlSink::open).transpose()?;
    obs_begin(&options);
    for spec in specs {
        let mut scenario = load(spec)?;
        if options.quick {
            scenario = scenario.quick_scaled();
        }
        execute(&scenario, &options, jsonl.clone()).map_err(|e| format!("{spec}: {e}"))?;
        if let Some(error) = jsonl.as_ref().and_then(|sink| sink.take_error()) {
            return Err(format!("--jsonl stream truncated: {error}"));
        }
    }
    if let Some(sink) = jsonl {
        sink.finalize()?;
    }
    obs_finish(&options)
}

/// Live progress observer: one stderr line per cell, updated in place as
/// runs fold.
fn progress_observer() -> impl FnMut(&RunEvent) + Send {
    move |event: &RunEvent| match event {
        RunEvent::CellStarted {
            label,
            planned_runs,
            ..
        } => {
            eprint!("  {label}: 0/{planned_runs} runs");
        }
        RunEvent::RunCompleted {
            run_index,
            run_stats,
            ..
        } => {
            eprint!(
                "\r  run {}: {} runs folded, {} samples, mean {:.2} ms (sd {:.2})      ",
                run_index,
                run_stats.measured_runs,
                run_stats.pooled_samples,
                run_stats.pooled_mean_ms,
                run_stats.pooled_std_dev_ms,
            );
        }
        RunEvent::RunFailed {
            run_index, payload, ..
        } => {
            eprintln!("\r  run {run_index}: PANICKED — {payload}");
        }
        RunEvent::CellCompleted {
            report,
            runs_used,
            stopped_early,
            ..
        } => {
            eprintln!(
                "\r  {}: done after {runs_used} run(s){}                      ",
                report.label,
                if *stopped_early {
                    " — stop rule fired early"
                } else {
                    ""
                }
            );
        }
        RunEvent::CellFailed { label, error, .. } => {
            eprintln!("\r  {label}: FAILED — {error}");
        }
        RunEvent::ScenarioCompleted {
            scenario,
            cells,
            failed_cells,
        } => {
            eprintln!("  {scenario}: {cells} cell(s), {failed_cells} failed");
        }
    }
}

/// The `--jsonl` sink, opened once per invocation so a multi-scenario
/// `run` appends every scenario's events to one stream instead of
/// truncating the file per scenario. Writes land in `<path>.tmp`; only a
/// completed run renames the stream to its requested name
/// ([`finalize`](Self::finalize)) — a crashed or truncated run can never
/// leave a partial file where a consumer expects a complete one.
struct JsonlSink {
    writer: Mutex<std::io::BufWriter<fs::File>>,
    path: String,
    tmp: String,
    /// First write/flush error. Observers run inside the campaign's fold
    /// lock, so an I/O failure (disk full, dead filesystem) must not
    /// panic there: the sink records it, stops writing, and the driver
    /// turns it into a normal `Err` after the scenario.
    error: Mutex<Option<String>>,
}

impl JsonlSink {
    fn open(path: &str) -> Result<Arc<Self>, String> {
        let tmp = format!("{path}.tmp");
        let file = with_io_retry(|| fs::File::create(&tmp)).map_err(|e| format!("{tmp}: {e}"))?;
        Ok(Arc::new(JsonlSink {
            writer: Mutex::new(std::io::BufWriter::new(file)),
            path: path.to_string(),
            tmp,
            error: Mutex::new(None),
        }))
    }

    fn record_error(&self, e: &std::io::Error) {
        let mut slot = self.error.lock().expect("jsonl error lock");
        if slot.is_none() {
            *slot = Some(format!("{}: {e}", self.tmp));
        }
    }

    /// The first write/flush error, if any (the stream is then truncated).
    fn take_error(&self) -> Option<String> {
        self.error.lock().expect("jsonl error lock").take()
    }

    /// Flushes and atomically renames `<path>.tmp` to the requested path —
    /// called once, after every scenario completed cleanly.
    fn finalize(&self) -> Result<(), String> {
        with_io_retry(|| self.writer.lock().expect("jsonl writer lock").flush())
            .map_err(|e| format!("{}: {e}", self.tmp))?;
        with_io_retry(|| fs::rename(&self.tmp, &self.path))
            .map_err(|e| format!("{}: {e}", self.path))?;
        Ok(())
    }
}

/// JSONL observer: one serialized event per line, flushed per line so a
/// reader (or a post-crash autopsy) sees every event the session folded.
fn jsonl_observer(sink: Arc<JsonlSink>) -> impl FnMut(&RunEvent) + Send {
    move |event: &RunEvent| {
        if sink.error.lock().expect("jsonl error lock").is_some() {
            return;
        }
        let line = serde_json::to_string(event).expect("event serializes");
        let mut writer = sink.writer.lock().expect("jsonl writer lock");
        let result = writeln!(writer, "{line}").and_then(|()| with_io_retry(|| writer.flush()));
        drop(writer);
        if let Err(e) = result {
            sink.record_error(&e);
        }
    }
}

fn execute(
    scenario: &Scenario,
    options: &Options,
    jsonl: Option<Arc<JsonlSink>>,
) -> Result<(), String> {
    let stop = match options.stop_ci {
        Some(rel_width) => StopRule::CiHalfWidth {
            level: 0.95,
            rel_width,
            min_runs: 2,
        },
        None => scenario.stop.unwrap_or_default(),
    };
    eprintln!(
        "scenario {}: {} workload, {} cell(s), {} nodes, {} runs ({}), seed {:#x}",
        scenario.name,
        scenario.workload.kind(),
        scenario.cells().len(),
        scenario.net.num_nodes,
        scenario.runs,
        stop.label(),
        scenario.seed,
    );
    let mut session = scenario.session().with_stop_rule(stop);
    if let Some(threads) = options.threads {
        session = session.with_threads(threads);
    }
    if options.progress {
        session = session.observe_fn(progress_observer());
    }
    if let Some(sink) = jsonl {
        session = session.observe_fn(jsonl_observer(sink));
    }
    let outcome = session.block()?;
    if options.json {
        println!("{}", outcome.to_json());
    } else {
        println!("{}", outcome.render());
    }
    report_degenerate_cells(&outcome)
}

/// Degenerate cells (run-time failures, sample-free campaigns) are
/// recorded in the outcome so surviving cells still print, but the
/// driver must not report success for them.
fn report_degenerate_cells(outcome: &ScenarioOutcome) -> Result<(), String> {
    let failed: Vec<String> = outcome
        .cell_errors()
        .into_iter()
        .map(|(label, error)| format!("{label}: {error}"))
        .collect();
    if !failed.is_empty() {
        return Err(format!(
            "{} of {} cell(s) degenerate — {}",
            failed.len(),
            outcome.cells.len(),
            failed.join("; ")
        ));
    }
    Ok(())
}

/// `shard run <file|name> --shard i/N --out <path>`: execute one shard of
/// a campaign and write its `PartialOutcome` as JSON — checkpointing the
/// folded prefix to `--checkpoint` as it goes, resuming from it with
/// `--resume`, and (in fault-injection builds) failing on purpose under
/// `--inject-fault`.
fn shard_run(spec: &str, options: &Options) -> Result<(), String> {
    let shard = options
        .shard
        .as_deref()
        .ok_or_else(|| usage("shard run needs --shard i/N"))?;
    let shard = ShardSpec::parse(shard)?;
    let out = options
        .out
        .as_deref()
        .ok_or_else(|| usage("shard run needs --out <part.json>"))?;
    if options.stop_ci.is_some() && options.coordinate.is_none() {
        return Err(usage(
            "--stop-ci needs --coordinate <addr> under shard run (a lone shard never sees \
             the folded prefix an adaptive stop rule decides on — point the fleet at a \
             `scenario shard coordinate` endpoint)",
        ));
    }
    options.reject_unused(
        "shard run",
        &[
            ("--json", options.json),
            ("--progress", options.progress),
            ("--jsonl", options.jsonl.is_some()),
            ("--salvage", options.salvage),
            ("--cadence", options.cadence.is_some()),
        ],
    )?;
    if options.checkpoint.is_none() && (options.resume || options.checkpoint_every.is_some()) {
        return Err(usage(
            "--resume and --checkpoint-every need --checkpoint <path>",
        ));
    }
    let fault = options
        .inject_fault
        .as_deref()
        .map(FaultPlan::from_json)
        .transpose()?;
    if fault.is_some() && !cfg!(feature = "fault-injection") {
        return Err(
            "--inject-fault needs a binary built with the `fault-injection` feature (it is \
             on by default; this one was built with --no-default-features)"
                .to_string(),
        );
    }
    #[cfg(feature = "fault-injection")]
    let _fault_guard = fault.map(|plan| {
        eprintln!("fault injection armed: {}", plan.label());
        fault::arm(plan)
    });
    #[cfg(not(feature = "fault-injection"))]
    let _ = fault;
    let mut scenario = load(spec)?;
    if options.quick {
        scenario = scenario.quick_scaled();
    }
    // `--stop-ci` mutates the scenario's stop rule *before* the run, so
    // the content digest the coordinator checks covers it — every shard
    // and the coordinator must be launched with the same override.
    if let Some(rel_width) = options.stop_ci {
        scenario.stop = Some(StopRule::CiHalfWidth {
            level: 0.95,
            rel_width,
            min_runs: 2,
        });
    }
    let coordinator = options.coordinate.as_deref().map(CoordClient::new);
    obs_begin(options);
    let threads = options
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    // Resume is crash-idempotent: a missing checkpoint file (died before
    // the first write, or a fresh start launched with the same command
    // line) just starts from the plan's first run.
    let resume = match (options.resume, options.checkpoint.as_deref()) {
        (true, Some(path)) => match fs::read_to_string(path) {
            Ok(text) => {
                let checkpoint =
                    Checkpoint::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
                bcbpt_obs::info!("resuming shard {shard} of {} from {path}", scenario.name);
                Some(checkpoint)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                bcbpt_obs::warn!("--resume: no checkpoint at {path} yet — starting fresh");
                None
            }
            Err(e) => return Err(format!("{path}: {e}")),
        },
        _ => None,
    };
    let checkpoint_path = options.checkpoint.clone();
    let mut sink_fn = {
        let checkpoint_path = checkpoint_path.clone();
        move |checkpoint: &Checkpoint| -> Result<(), String> {
            let path = checkpoint_path
                .as_deref()
                .expect("sink only installed with --checkpoint");
            let json = format!("{}\n", checkpoint.to_json());
            #[cfg(feature = "fault-injection")]
            if fault::armed() == Some(FaultPlan::TornCheckpoint) {
                // Tear the write on purpose: half the bytes, straight to
                // the final path (no tmp + rename), then die — the
                // worst-case crash --resume must reject.
                let _ = fs::write(path, &json.as_bytes()[..json.len() / 2]);
                fault::hard_exit("TornCheckpoint");
            }
            atomic_write(path, json.as_bytes())
        }
    };
    let sink: Option<&mut CheckpointSink<'_>> = match checkpoint_path {
        Some(_) => Some(&mut sink_fn),
        None => None,
    };
    // One warm-snapshot cache for the whole process: sweep cells sharing
    // a warm recipe (same net/protocol/seed/warmup) warm once and clone
    // thereafter — the part stays byte-identical either way.
    let warm = WarmCache::new(8);
    let part = run_shard_with(
        &scenario,
        shard,
        &ProtocolRegistry::builtins(),
        ShardRunOptions {
            threads: Some(threads),
            resume,
            checkpoint_every: options.checkpoint_every.unwrap_or(1),
            sink,
            warm_cache: Some(&warm),
            coordinator: coordinator
                .as_ref()
                .map(|client| client as &dyn StopCoordinator),
            ..ShardRunOptions::default()
        },
    )
    .map_err(|e| format!("{spec}: {e}"))?;
    if warm.hits() > 0 {
        bcbpt_obs::info!(
            "warm cache: {} re-warm(s) skipped ({} built)",
            warm.hits(),
            warm.misses()
        );
    }
    let mut bytes = format!("{}\n", part.to_json()).into_bytes();
    #[cfg(feature = "fault-injection")]
    if fault::corrupt_output(&mut bytes) {
        eprintln!("fault injection: flipped one byte of the serialized part");
    }
    atomic_write(out, &bytes)?;
    if let Some(path) = options.checkpoint.as_deref() {
        // The part is durable; the checkpoint has served its purpose.
        let _ = fs::remove_file(path);
    }
    // One machine-grepable summary, the same shape for every workload
    // family (all of them shard now — there is no deferred case):
    // `stop=` carries the coordinator's per-cell stop index (`none` when
    // a cell ran its whole budget or the run was uncoordinated).
    let stops = part.cell_stop_indices();
    let stop = if stops.iter().all(Option::is_none) {
        "none".to_string()
    } else {
        stops
            .iter()
            .map(|s| s.map_or_else(|| "none".to_string(), |s| s.to_string()))
            .collect::<Vec<_>>()
            .join(",")
    };
    eprintln!(
        "shard-run scenario={} shard={shard} cells={} runs={}..{} used={} stop={stop} out={out}",
        scenario.name,
        part.cells.len(),
        part.plan.run_start,
        part.plan.run_end,
        part.runs_used(),
    );
    obs_finish(options)
}

/// `shard merge <part.json>...`: merge shard parts — passed in ascending
/// shard order (`part-0.json part-1.json …`; a sorted shell glob works up
/// to 10 shards) — and print the merged `ScenarioOutcome` exactly like
/// `scenario run` would. With `--salvage`, unreadable/tampered/mismatched
/// parts are quarantined instead of failing the merge; an incomplete
/// surviving set prints a machine-readable repair plan and exits nonzero.
fn shard_merge(paths: &[String], options: &Options) -> Result<(), String> {
    options.reject_unused("shard merge", &options.obs_flags())?;
    options.reject_unused(
        "shard merge",
        &[
            ("--quick", options.quick),
            ("--progress", options.progress),
            ("--jsonl", options.jsonl.is_some()),
            ("--stop-ci", options.stop_ci.is_some()),
            ("--threads", options.threads.is_some()),
            ("--shard", options.shard.is_some()),
            ("--out", options.out.is_some()),
            ("--checkpoint", options.checkpoint.is_some()),
            ("--checkpoint-every", options.checkpoint_every.is_some()),
            ("--resume", options.resume),
            ("--inject-fault", options.inject_fault.is_some()),
        ],
    )?;
    if options.salvage {
        return shard_salvage(paths, options);
    }
    let mut parts = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parts.push(PartialOutcome::from_json(&text).map_err(|e| format!("{path}: {e}"))?);
    }
    let part_count = parts.len();
    let outcome = merge_shards(parts)?;
    eprintln!(
        "merged {part_count} shard(s) of {}: {} cell(s)",
        outcome.scenario,
        outcome.cells.len()
    );
    if options.json {
        println!("{}", outcome.to_json());
    } else {
        println!("{}", outcome.render());
    }
    report_degenerate_cells(&outcome)
}

/// `shard merge --salvage`: quarantine every part that cannot be trusted,
/// merge the survivors, and either print the merged outcome (complete
/// set) or a `RepairPlan` JSON naming the exact re-runs (incomplete set,
/// nonzero exit).
fn shard_salvage(paths: &[String], options: &Options) -> Result<(), String> {
    let sources: Vec<(String, Result<PartialOutcome, String>)> = paths
        .iter()
        .map(|path| {
            let result = fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|text| PartialOutcome::from_json(&text));
            (path.clone(), result)
        })
        .collect();
    let report = salvage_merge(sources, "<scenario.json>")?;
    for q in &report.quarantined {
        eprintln!(
            "quarantined {}{}: {}",
            q.source,
            q.shard_index
                .map_or_else(String::new, |i| format!(" (claims shard {i})")),
            q.reason
        );
    }
    match (report.outcome, report.repair) {
        (Some(outcome), _) => {
            eprintln!(
                "salvage: merged {} of {} part file(s) for {} ({} quarantined)",
                paths.len() - report.quarantined.len(),
                paths.len(),
                outcome.scenario,
                report.quarantined.len()
            );
            if options.json {
                println!("{}", outcome.to_json());
            } else {
                println!("{}", outcome.render());
            }
            report_degenerate_cells(&outcome)
        }
        (None, Some(repair)) => {
            println!("{}", repair.to_json());
            Err(format!(
                "salvage: {} shard(s) have no valid part ({} quarantined) — re-run the \
                 commands in the repair plan above, then merge again",
                repair.missing_shards.len(),
                repair.quarantined.len()
            ))
        }
        (None, None) => unreachable!("salvage yields an outcome or a repair plan"),
    }
}

/// `shard coordinate <file|name> --shards N`: serve the cross-shard
/// adaptive-stop coordinator for one scenario run. The fleet's
/// `scenario shard run --coordinate <addr>` processes submit their folded
/// prefixes here; the subcommand exits once every cell is decided (or
/// abandoned), printing a machine-grepable summary of the stop indices
/// and the runs the early stops saved.
///
/// Launch parameters must match the fleet exactly — same scenario file,
/// same `--quick`/`--stop-ci`, same shard count — or the shards refuse to
/// coordinate (the config is checked by content digest).
fn shard_coordinate(spec: &str, options: &Options) -> Result<(), String> {
    let shards = options
        .shards
        .ok_or_else(|| usage("shard coordinate needs --shards <n>"))?;
    options.reject_unused("shard coordinate", &options.obs_flags())?;
    options.reject_unused(
        "shard coordinate",
        &[
            ("--json", options.json),
            ("--progress", options.progress),
            ("--jsonl", options.jsonl.is_some()),
            ("--threads", options.threads.is_some()),
            ("--shard", options.shard.is_some()),
            ("--out", options.out.is_some()),
            ("--checkpoint", options.checkpoint.is_some()),
            ("--checkpoint-every", options.checkpoint_every.is_some()),
            ("--resume", options.resume),
            ("--inject-fault", options.inject_fault.is_some()),
            ("--salvage", options.salvage),
            ("--coordinate", options.coordinate.is_some()),
            ("--spool", options.spool.is_some()),
            ("--workers", options.workers.is_some()),
            ("--queue", options.queue.is_some()),
            ("--warm", options.warm.is_some()),
            ("--wait", options.wait),
        ],
    )?;
    let mut scenario = load(spec)?;
    if options.quick {
        scenario = scenario.quick_scaled();
    }
    // The identical override order as `shard run` — the digests must
    // agree across the fleet.
    if let Some(rel_width) = options.stop_ci {
        scenario.stop = Some(StopRule::CiHalfWidth {
            level: 0.95,
            rel_width,
            min_runs: 2,
        });
    }
    let cadence = options.cadence.unwrap_or(1);
    let coordinator = Arc::new(
        LocalCoordinator::new(&scenario, shards, cadence).map_err(|e| format!("{spec}: {e}"))?,
    );
    let addr = options
        .addr
        .clone()
        .unwrap_or_else(|| "127.0.0.1:7071".to_string());
    let server = CoordServer::start(&addr, Arc::clone(&coordinator))?;
    eprintln!(
        "coordinator on http://{} — scenario {}, {shards} shard(s), cadence {cadence}, rule {}",
        server.local_addr(),
        scenario.name,
        scenario
            .stop
            .expect("constructor validated the rule")
            .label(),
    );
    while !coordinator.is_complete() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    // Linger briefly so shards blocked on the last decision fetch it
    // (they poll every 25 ms) before the endpoint disappears.
    std::thread::sleep(std::time::Duration::from_millis(500));
    let stops: Vec<String> = coordinator
        .decisions()
        .iter()
        .map(|decision| match decision {
            Some(decision) => decision
                .stop_at
                .map_or_else(|| "none".to_string(), |s| s.to_string()),
            None => "abandoned".to_string(),
        })
        .collect();
    println!(
        "shard-coordinate scenario={} shards={shards} cadence={cadence} stops={} runs-saved={}",
        scenario.name,
        stops.join(","),
        coordinator.runs_saved(),
    );
    Ok(())
}

/// `scenario serve`: run the campaign service until drained (SIGINT,
/// SIGTERM or `POST /shutdown`). Running shards park at a durable
/// checkpoint on drain; restarting on the same `--spool` resumes them.
fn serve(options: &Options) -> Result<(), String> {
    options.reject_unused("serve", &options.obs_flags())?;
    options.reject_unused(
        "serve",
        &[
            ("--quick", options.quick),
            ("--json", options.json),
            ("--progress", options.progress),
            ("--jsonl", options.jsonl.is_some()),
            ("--stop-ci", options.stop_ci.is_some()),
            ("--threads", options.threads.is_some()),
            ("--shard", options.shard.is_some()),
            ("--shards", options.shards.is_some()),
            ("--out", options.out.is_some()),
            ("--checkpoint", options.checkpoint.is_some()),
            ("--resume", options.resume),
            ("--inject-fault", options.inject_fault.is_some()),
            ("--salvage", options.salvage),
            ("--wait", options.wait),
        ],
    )?;
    let spool = options
        .spool
        .clone()
        .unwrap_or_else(|| "serve-spool".to_string());
    let mut config = ServeConfig::new(&spool);
    if let Some(addr) = &options.addr {
        config.addr = addr.clone();
    }
    if let Some(workers) = options.workers {
        config.workers = workers.max(1);
    }
    if let Some(queue) = options.queue {
        config.queue_capacity = queue.max(1);
    }
    if let Some(warm) = options.warm {
        config.warm_capacity = warm;
    }
    if let Some(every) = options.checkpoint_every {
        config.checkpoint_every = every;
    }
    config.poll_signals = true;
    bcbpt_serve::signals::install();
    let workers = config.workers;
    let server = Server::start(config)?;
    eprintln!(
        "campaign service on http://{} — {} worker(s), spool {spool} \
         (drain with SIGTERM, ctrl-c or POST /shutdown)",
        server.local_addr(),
        workers,
    );
    server.wait()?;
    eprintln!("campaign service drained");
    Ok(())
}

/// `scenario submit <file|name>`: submit a scenario to a running service
/// and print the submit response; with `--wait`, poll the job to
/// completion and print its outcome (`--json` for the raw stored bytes,
/// byte-identical to `scenario run --json`).
fn submit(spec: &str, options: &Options) -> Result<(), String> {
    options.reject_unused("submit", &options.obs_flags())?;
    options.reject_unused(
        "submit",
        &[
            ("--progress", options.progress),
            ("--jsonl", options.jsonl.is_some()),
            ("--stop-ci", options.stop_ci.is_some()),
            ("--threads", options.threads.is_some()),
            ("--shard", options.shard.is_some()),
            ("--out", options.out.is_some()),
            ("--checkpoint", options.checkpoint.is_some()),
            ("--checkpoint-every", options.checkpoint_every.is_some()),
            ("--resume", options.resume),
            ("--inject-fault", options.inject_fault.is_some()),
            ("--salvage", options.salvage),
            ("--spool", options.spool.is_some()),
            ("--workers", options.workers.is_some()),
            ("--queue", options.queue.is_some()),
            ("--warm", options.warm.is_some()),
        ],
    )?;
    let addr = options
        .addr
        .clone()
        .unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let mut scenario = load(spec)?;
    if options.quick {
        scenario = scenario.quick_scaled();
    }
    let path = match options.shards {
        Some(shards) => format!("/scenarios?shards={shards}"),
        None => "/scenarios".to_string(),
    };
    let response = client::post(&addr, &path, &scenario.to_json())?;
    let body = response.text();
    if !(200..300).contains(&response.status) {
        return Err(format!(
            "submit {spec}: status {} — {body}",
            response.status
        ));
    }
    eprintln!("{}", body.trim_end());
    if !options.wait {
        return Ok(());
    }
    let submitted: serde::Value =
        serde_json::from_str(&body).map_err(|e| format!("submit response: {e}"))?;
    let job = submitted
        .as_map()
        .map(|entries| serde::map_get(entries, "job"))
        .and_then(serde::Value::as_str)
        .ok_or_else(|| format!("submit response has no job id: {body}"))?
        .to_string();
    let status = client::wait_job(&addr, &job, std::time::Duration::from_secs(3600))?;
    let outcome = client::get(&addr, &format!("/jobs/{job}/outcome"))?;
    if outcome.status != 200 {
        return Err(format!("job {job} settled without an outcome: {status}"));
    }
    let text = outcome.text();
    if options.json {
        // The stored bytes end in a newline already; print them verbatim.
        print!("{text}");
    } else {
        let parsed = ScenarioOutcome::from_json(&text)?;
        println!("{}", parsed.render());
    }
    Ok(())
}

fn list() {
    println!("built-in scenarios (scenario quick <name>, full scale in scenarios/<name>.json):");
    for name in Scenario::builtin_names() {
        let scenario = Scenario::builtin(name).expect("listed names resolve");
        let axes = scenario
            .sweep
            .as_ref()
            .map_or_else(|| "single cell".to_string(), |sweep| sweep.describe());
        println!(
            "  {name:<10} {:<15} {:<14} {}",
            scenario.workload.kind(),
            axes,
            Scenario::builtin_description(name).expect("listed names are described"),
        );
    }
}

fn export(dir: &str) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    for name in Scenario::builtin_names() {
        let scenario = Scenario::builtin(name).expect("listed names resolve");
        let path = format!("{dir}/{name}.json");
        fs::write(&path, format!("{}\n", scenario.to_json()))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn parse_outcome(path: &str) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let outcome = ScenarioOutcome::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "outcome {:?}: {} workload, {} cell(s)",
        outcome.scenario,
        outcome.workload.kind(),
        outcome.cells.len()
    );
    Ok(())
}

/// Validates a `--jsonl` event stream: every line parses as a
/// [`RunEvent`], every started cell is closed (completed or failed)
/// before its scenario's `ScenarioCompleted`, and the stream ends with a
/// `ScenarioCompleted` — the session's completion guarantee, checked per
/// scenario segment so a truncated multi-scenario stream cannot pass on
/// the strength of an earlier scenario's terminator.
fn check_events(path: &str) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    // Cells currently open, each mapped to the run index its next
    // run-level event must carry: runs within a cell are 0-based,
    // gap-free, and strictly ascending, whether they measured or
    // panicked.
    let mut open_cells: std::collections::BTreeMap<usize, usize> =
        std::collections::BTreeMap::new();
    let mut last: Option<RunEvent> = None;
    let mut count = 0usize;
    let mut scenarios = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |what: &str| format!("{path}:{}: {what}", lineno + 1);
        let event: RunEvent = serde_json::from_str(line).map_err(|e| at(&format!("{e}")))?;
        count += 1;
        match &event {
            RunEvent::CellStarted { cell, .. } => {
                if open_cells.insert(*cell, 0).is_some() {
                    return Err(at(&format!("cell {cell} started twice")));
                }
            }
            RunEvent::RunCompleted {
                cell, run_index, ..
            }
            | RunEvent::RunFailed {
                cell, run_index, ..
            } => {
                let Some(expected) = open_cells.get_mut(cell) else {
                    return Err(at(&format!("run event for cell {cell} that never started")));
                };
                if *run_index != *expected {
                    return Err(at(&format!(
                        "cell {cell} run {run_index} out of order: expected run {expected} \
                         (runs must be gap-free and ascending)"
                    )));
                }
                *expected += 1;
            }
            RunEvent::CellCompleted { cell, .. } | RunEvent::CellFailed { cell, .. } => {
                if open_cells.remove(cell).is_none() {
                    return Err(at(&format!("cell {cell} closed without starting")));
                }
            }
            RunEvent::ScenarioCompleted { .. } => {
                if !open_cells.is_empty() {
                    return Err(at(&format!(
                        "scenario completed with {} cell(s) still open",
                        open_cells.len()
                    )));
                }
                scenarios += 1;
            }
        }
        last = Some(event);
    }
    match last {
        Some(RunEvent::ScenarioCompleted {
            scenario,
            cells,
            failed_cells,
        }) => {
            println!(
                "events {path}: {count} event(s), {scenarios} scenario(s), last {scenario:?} \
                 completed ({cells} cell(s), {failed_cells} failed)"
            );
            Ok(())
        }
        Some(other) => Err(format!(
            "{path}: stream ends with {:?}, not scenario_completed — the run was cut short",
            other.kind()
        )),
        None => Err(format!("{path}: no events")),
    }
}
