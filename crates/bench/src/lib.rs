//! # bcbpt-bench — benchmark and figure-regeneration harness
//!
//! This crate carries no library code of its own; it hosts:
//!
//! * **The `scenario` driver** (`src/bin/scenario.rs`): the one experiment
//!   binary. Every paper figure and extension experiment is a declarative
//!   JSON file under `scenarios/` at the workspace root — `scenario run
//!   scenarios/fig3.json` regenerates Fig. 3, `scenario quick <name>`
//!   runs a CI-scale built-in, `scenario list`/`export` enumerate them.
//! * **Support binaries**: `validate` (§V.A simulator validation against
//!   the reference delay shape), `degree` (§V.C delay-variance-vs-degree
//!   claim), `perf` (performance baseline snapshots).
//! * **Criterion benches** (`benches/`): engine/event-queue throughput,
//!   network flooding, cluster-formation cost per protocol, and timed
//!   wrappers around the figure regenerations.
//!
//! See `EXPERIMENTS.md` at the workspace root for the paper-vs-measured
//! record produced with these targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
