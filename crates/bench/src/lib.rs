//! # bcbpt-bench — benchmark and figure-regeneration harness
//!
//! This crate carries no library code of its own; it hosts:
//!
//! * **Figure binaries** (`src/bin/`): one per paper artefact —
//!   `fig3`, `fig4` (the paper's figures), `validate` (§V.A simulator
//!   validation), `sweep` (extended threshold sweep), `overhead`
//!   (§IV.A future-work overhead evaluation), `attacks` (§V.C future-work
//!   eclipse/partition evaluation). Each accepts `--paper` for the
//!   full-scale 5000-node configuration.
//! * **Criterion benches** (`benches/`): engine/event-queue throughput,
//!   network flooding, cluster-formation cost per protocol, and timed
//!   wrappers around the figure regenerations.
//!
//! See `EXPERIMENTS.md` at the workspace root for the paper-vs-measured
//! record produced with these targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
