//! End-to-end crash-recovery coverage of the `scenario` binary: a shard
//! process hard-killed by the fault injector resumes from its checkpoint
//! and merges byte-identically to an uninterrupted campaign, a corrupted
//! part file is quarantined by `shard merge --salvage` and repaired by
//! following the emitted plan, a torn checkpoint is rejected on resume,
//! and the `events` validator enforces gap-free ascending run indices.

use bcbpt_core::Scenario;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Exit code of an injected hard crash (`bcbpt_core::fault::FAULT_EXIT_CODE`).
const FAULT_EXIT_CODE: i32 = 86;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_scenario")
}

/// A fresh scratch directory per test, under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bcbpt-fault-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Writes the integration-scale scenario the tests run: `fig3.json`
/// shrunk to two cells, four runs, a 50-node network.
fn tiny_scenario_file(dir: &Path) -> PathBuf {
    let source = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/fig3.json");
    let text = fs::read_to_string(&source).expect("fig3.json");
    let mut scenario = Scenario::from_json(&text)
        .expect("fig3 parses")
        .quick_scaled();
    scenario.net.num_nodes = 50;
    scenario.runs = 4;
    scenario.warmup_ms = 800.0;
    scenario.window_ms = 8_000.0;
    if let Some(sweep) = &mut scenario.sweep {
        sweep.protocols.truncate(2);
        sweep.thresholds_ms.truncate(1);
        sweep.num_nodes.truncate(1);
    }
    let path = dir.join("tiny.json");
    fs::write(&path, scenario.to_json()).expect("write scenario");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("scenario binary runs")
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed ({:?}):\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The unsharded `scenario run --json` output the recovery paths must
/// reproduce byte-for-byte.
fn reference_json(scenario: &Path) -> Vec<u8> {
    let out = run(&[
        "run",
        scenario.to_str().unwrap(),
        "--json",
        "--threads",
        "2",
    ]);
    assert_success(&out, "reference run");
    out.stdout
}

#[test]
fn a_hard_killed_shard_resumes_from_its_checkpoint_byte_identically() {
    let dir = scratch("kill-resume");
    let scenario = tiny_scenario_file(&dir);
    let reference = reference_json(&scenario);

    for threads in ["1", "3", "8"] {
        let part0 = dir.join(format!("part-0-t{threads}.json"));
        let part1 = dir.join(format!("part-1-t{threads}.json"));
        let ckpt = dir.join(format!("ckpt-t{threads}.json"));

        // Shard 0 dies a simulated SIGKILL after its third fold — the
        // part never appears, the checkpoint survives.
        let out = run(&[
            "shard",
            "run",
            scenario.to_str().unwrap(),
            "--shard",
            "0/2",
            "--out",
            part0.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--threads",
            threads,
            "--inject-fault",
            r#"{"DieAfterRuns":{"n":3}}"#,
        ]);
        assert_eq!(
            out.status.code(),
            Some(FAULT_EXIT_CODE),
            "injected crash exits with the fault code: {}",
            stderr_of(&out)
        );
        assert!(!part0.exists(), "the killed shard wrote no part");
        assert!(ckpt.exists(), "the checkpoint survived the crash");

        // Resume finishes the shard and cleans up the checkpoint.
        let out = run(&[
            "shard",
            "run",
            scenario.to_str().unwrap(),
            "--shard",
            "0/2",
            "--out",
            part0.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--resume",
            "--threads",
            threads,
        ]);
        assert_success(&out, "resumed shard 0");
        assert!(part0.exists(), "the resumed shard wrote its part");
        assert!(!ckpt.exists(), "the completed shard removed its checkpoint");

        let out = run(&[
            "shard",
            "run",
            scenario.to_str().unwrap(),
            "--shard",
            "1/2",
            "--out",
            part1.to_str().unwrap(),
            "--threads",
            threads,
        ]);
        assert_success(&out, "shard 1");

        let out = run(&[
            "shard",
            "merge",
            part0.to_str().unwrap(),
            part1.to_str().unwrap(),
            "--json",
        ]);
        assert_success(&out, "merge");
        assert_eq!(
            out.stdout, reference,
            "killed+resumed merge diverged from the unsharded run at {threads} thread(s)"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupted_part_is_quarantined_and_the_repair_plan_completes_the_merge() {
    let dir = scratch("salvage");
    let scenario = tiny_scenario_file(&dir);
    let reference = reference_json(&scenario);
    let part0 = dir.join("part-0.json");
    let part1 = dir.join("part-1.json");

    // Byte 5 of the pretty JSON is inside the "version" key — flipping it
    // guarantees the corruption is semantic, not whitespace.
    let out = run(&[
        "shard",
        "run",
        scenario.to_str().unwrap(),
        "--shard",
        "0/2",
        "--out",
        part0.to_str().unwrap(),
        "--threads",
        "2",
        "--inject-fault",
        r#"{"CorruptOutput":{"byte_offset":5}}"#,
    ]);
    assert_success(&out, "shard 0 with corrupted output");
    let out = run(&[
        "shard",
        "run",
        scenario.to_str().unwrap(),
        "--shard",
        "1/2",
        "--out",
        part1.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert_success(&out, "shard 1");

    // The strict merge refuses the set outright.
    let out = run(&[
        "shard",
        "merge",
        part0.to_str().unwrap(),
        part1.to_str().unwrap(),
        "--json",
    ]);
    assert!(!out.status.success(), "strict merge must reject corruption");

    // The salvage merge quarantines the bad part and prints a repair
    // plan naming the exact re-run.
    let out = run(&[
        "shard",
        "merge",
        part0.to_str().unwrap(),
        part1.to_str().unwrap(),
        "--salvage",
    ]);
    assert!(
        !out.status.success(),
        "salvage with a missing shard exits nonzero"
    );
    let plan = String::from_utf8_lossy(&out.stdout);
    assert!(
        plan.contains("--shard 0/2"),
        "repair plan names the re-run: {plan}"
    );
    assert!(
        plan.contains("missing_shards"),
        "repair plan is machine-readable JSON: {plan}"
    );
    assert!(
        stderr_of(&out).contains("quarantined"),
        "quarantine reported on stderr: {}",
        stderr_of(&out)
    );

    // Following the plan completes the merge, equal to the unsharded run.
    let out = run(&[
        "shard",
        "run",
        scenario.to_str().unwrap(),
        "--shard",
        "0/2",
        "--out",
        part0.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert_success(&out, "repair re-run of shard 0");
    let out = run(&[
        "shard",
        "merge",
        part0.to_str().unwrap(),
        part1.to_str().unwrap(),
        "--salvage",
        "--json",
    ]);
    assert_success(&out, "salvage merge after repair");
    assert_eq!(out.stdout, reference, "repaired merge equals the batch run");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_torn_checkpoint_is_rejected_on_resume_and_a_fresh_start_recovers() {
    let dir = scratch("torn");
    let scenario = tiny_scenario_file(&dir);
    let part0 = dir.join("part-0.json");
    let ckpt = dir.join("ckpt.json");

    // TornCheckpoint tears the first checkpoint write mid-byte and
    // hard-exits — simulating a crash inside a non-atomic writer.
    let out = run(&[
        "shard",
        "run",
        scenario.to_str().unwrap(),
        "--shard",
        "0/2",
        "--out",
        part0.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--threads",
        "2",
        "--inject-fault",
        r#""TornCheckpoint""#,
    ]);
    assert_eq!(out.status.code(), Some(FAULT_EXIT_CODE));
    assert!(ckpt.exists(), "the torn checkpoint file exists");

    // Resume refuses the torn file instead of continuing from garbage.
    let out = run(&[
        "shard",
        "run",
        scenario.to_str().unwrap(),
        "--shard",
        "0/2",
        "--out",
        part0.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--resume",
        "--threads",
        "2",
    ]);
    assert!(
        !out.status.success(),
        "resume must reject a torn checkpoint"
    );
    assert_ne!(
        out.status.code(),
        Some(FAULT_EXIT_CODE),
        "rejection is an ordinary error, not an injected crash"
    );
    assert!(
        stderr_of(&out).contains("checkpoint"),
        "the error names the checkpoint: {}",
        stderr_of(&out)
    );

    // Deleting the torn file and resuming starts fresh and completes.
    fs::remove_file(&ckpt).expect("remove torn checkpoint");
    let out = run(&[
        "shard",
        "run",
        scenario.to_str().unwrap(),
        "--shard",
        "0/2",
        "--out",
        part0.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--resume",
        "--threads",
        "2",
    ]);
    assert_success(&out, "fresh start after deleting the torn checkpoint");
    assert!(
        stderr_of(&out).contains("starting fresh"),
        "the fresh start is announced: {}",
        stderr_of(&out)
    );
    assert!(part0.exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn the_events_validator_enforces_gap_free_ascending_run_indices() {
    let dir = scratch("events");
    let scenario = tiny_scenario_file(&dir);
    let events = dir.join("events.jsonl");

    let out = run(&[
        "run",
        scenario.to_str().unwrap(),
        "--jsonl",
        events.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert_success(&out, "run with --jsonl");
    assert!(events.exists(), "the stream was renamed into place");
    assert!(
        !dir.join("events.jsonl.tmp").exists(),
        "no temp file left behind"
    );

    let out = run(&["events", events.to_str().unwrap()]);
    assert_success(&out, "validator on a clean stream");

    // Duplicating a run-level line breaks the gap-free ascending
    // invariant: the validator must point at the offending line.
    let text = fs::read_to_string(&events).expect("events stream");
    let (dup_index, dup_line) = text
        .lines()
        .enumerate()
        .find(|(_, l)| l.contains("RunCompleted"))
        .expect("a RunCompleted event");
    let mut lines: Vec<&str> = text.lines().collect();
    lines.insert(dup_index, dup_line);
    let tampered = dir.join("tampered.jsonl");
    fs::write(&tampered, lines.join("\n")).expect("write tampered stream");

    let out = run(&["events", tampered.to_str().unwrap()]);
    assert!(!out.status.success(), "duplicate run index must fail");
    let err = stderr_of(&out);
    assert!(
        err.contains("gap-free") && err.contains(&format!(":{}", dup_index + 2)),
        "the error names the invariant and the line: {err}"
    );

    // Dropping a run-level line leaves a gap — also rejected.
    let mut lines: Vec<&str> = text.lines().collect();
    lines.remove(dup_index);
    fs::write(&tampered, lines.join("\n")).expect("write gapped stream");
    let out = run(&["events", tampered.to_str().unwrap()]);
    assert!(!out.status.success(), "a run-index gap must fail");
    assert!(
        stderr_of(&out).contains("gap-free"),
        "the error names the invariant: {}",
        stderr_of(&out)
    );
    let _ = fs::remove_dir_all(&dir);
}
