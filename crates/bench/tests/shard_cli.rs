//! End-to-end coverage of the `scenario shard` command surface: the
//! machine-grepable `shard-run` summary line has the same shape for every
//! workload family (the old "deferred" message for indivisible cells is
//! gone — nothing is indivisible any more), a sharded replicated-family
//! run merges byte-identically to the unsharded `--json` output, and a
//! coordinated fleet of real processes stops early, agrees on the stop
//! indices, and merges cleanly.

use bcbpt_core::Scenario;
use std::collections::BTreeMap;
use std::fs;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_scenario")
}

/// A fresh scratch directory per test, under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bcbpt-shardcli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Loads a checked-in scenario shrunk to integration-test scale and
/// writes it into `dir`.
fn tiny_scenario_file(dir: &Path, name: &str) -> PathBuf {
    let source =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../scenarios/{name}.json"));
    let text = fs::read_to_string(&source).unwrap_or_else(|e| panic!("{name}.json: {e}"));
    let mut scenario = Scenario::from_json(&text)
        .unwrap_or_else(|e| panic!("{name} parses: {e}"))
        .quick_scaled();
    scenario.net.num_nodes = scenario.net.num_nodes.min(40);
    scenario.runs = scenario.runs.min(4);
    scenario.warmup_ms = scenario.warmup_ms.min(800.0);
    scenario.window_ms = scenario.window_ms.min(8_000.0);
    if let Some(sweep) = &mut scenario.sweep {
        sweep.protocols.truncate(2);
        sweep.thresholds_ms.truncate(1);
        sweep.num_nodes.truncate(1);
    }
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, scenario.to_json()).expect("write scenario");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("scenario binary runs")
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed ({:?}):\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Finds the `shard-run …` summary line and parses its `key=value`
/// fields — the machine-grepable contract scripts rely on.
fn parse_summary(stderr: &str) -> BTreeMap<String, String> {
    let line = stderr
        .lines()
        .find(|line| line.starts_with("shard-run "))
        .unwrap_or_else(|| panic!("no `shard-run` summary line in stderr:\n{stderr}"));
    line.split_whitespace()
        .skip(1)
        .map(|token| {
            let (key, value) = token
                .split_once('=')
                .unwrap_or_else(|| panic!("summary token {token:?} is not key=value: {line}"));
            (key.to_string(), value.to_string())
        })
        .collect()
}

/// Runs both shards of a 2-shard fleet, asserting each prints the
/// summary, and returns the part paths plus the parsed summaries.
fn run_two_shards(scenario: &Path, dir: &Path) -> (Vec<PathBuf>, Vec<BTreeMap<String, String>>) {
    let mut parts = Vec::new();
    let mut summaries = Vec::new();
    for i in 0..2 {
        let part = dir.join(format!("part-{i}.json"));
        let out = run(&[
            "shard",
            "run",
            scenario.to_str().unwrap(),
            "--shard",
            &format!("{i}/2"),
            "--out",
            part.to_str().unwrap(),
            "--threads",
            "2",
        ]);
        assert_success(&out, &format!("shard {i}/2"));
        summaries.push(parse_summary(&stderr_of(&out)));
        parts.push(part);
    }
    (parts, summaries)
}

#[test]
fn every_family_prints_the_same_machine_grepable_summary_shape() {
    let dir = scratch("summary");
    // One scenario per summary-relevant family: replicated single-shot
    // (partition — the family the old code answered with a prose
    // "deferred" message), paired adversarial, and streaming.
    for name in ["partition", "pingspoof", "fig3"] {
        let scenario = tiny_scenario_file(&dir, name);
        let (parts, summaries) = run_two_shards(&scenario, &dir);
        for (i, summary) in summaries.iter().enumerate() {
            for key in ["scenario", "shard", "cells", "runs", "used", "stop", "out"] {
                assert!(
                    summary.contains_key(key),
                    "{name} shard {i}: summary missing {key}: {summary:?}"
                );
            }
            assert_eq!(summary["scenario"], name, "{name} shard {i}");
            assert_eq!(summary["shard"], format!("{i}/2"), "{name} shard {i}");
            assert_eq!(
                summary["stop"], "none",
                "{name} shard {i}: an uncoordinated run never stops early"
            );
            summary["used"]
                .parse::<usize>()
                .unwrap_or_else(|e| panic!("{name} shard {i}: used not a number: {e}"));
        }
        // The parts the summaries point at merge byte-identically to the
        // unsharded run.
        let reference = run(&[
            "run",
            scenario.to_str().unwrap(),
            "--json",
            "--threads",
            "2",
        ]);
        assert_success(&reference, &format!("{name} reference run"));
        let merged = run(&[
            "shard",
            "merge",
            parts[0].to_str().unwrap(),
            parts[1].to_str().unwrap(),
            "--json",
        ]);
        assert_success(&merged, &format!("{name} merge"));
        assert_eq!(
            merged.stdout, reference.stdout,
            "{name}: 2-shard merge differs from the unsharded --json output"
        );
    }
}

#[test]
fn a_lone_shard_refuses_an_adaptive_stop_rule_with_a_pointer_to_the_coordinator() {
    let dir = scratch("refuse");
    let scenario = tiny_scenario_file(&dir, "sweep");
    let out = run(&[
        "shard",
        "run",
        scenario.to_str().unwrap(),
        "--shard",
        "0/2",
        "--out",
        dir.join("part-0.json").to_str().unwrap(),
    ]);
    assert!(
        !out.status.success(),
        "adaptive uncoordinated shard must fail"
    );
    let stderr = stderr_of(&out);
    for needle in ["adaptive", "stop", "shard", "--coordinate"] {
        assert!(
            stderr.contains(needle),
            "rejection should mention {needle:?}:\n{stderr}"
        );
    }
}

#[test]
fn a_coordinated_process_fleet_stops_early_and_merges_cleanly() {
    let dir = scratch("coordinate");
    let scenario = tiny_scenario_file(&dir, "fig3");
    // A deterministic per-process port keeps parallel test binaries from
    // colliding; the OS would hand port 0 only to the coordinator, which
    // the shard processes couldn't discover.
    let port = 21000 + (std::process::id() % 20000) as u16;
    let addr = format!("127.0.0.1:{port}");

    let coordinator = Command::new(bin())
        .args([
            "shard",
            "coordinate",
            scenario.to_str().unwrap(),
            "--shards",
            "2",
            "--addr",
            &addr,
            "--stop-ci",
            "0.9",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("coordinator spawns");

    // Wait for the endpoint to bind before launching the fleet.
    let deadline = Instant::now() + Duration::from_secs(10);
    while TcpStream::connect(&addr).is_err() {
        assert!(Instant::now() < deadline, "coordinator never bound {addr}");
        std::thread::sleep(Duration::from_millis(25));
    }

    // The shards block on each other's prefix envelopes at every
    // cadence boundary, so they must run concurrently.
    let children: Vec<_> = (0..2)
        .map(|i| {
            let part = dir.join(format!("part-{i}.json"));
            let child = Command::new(bin())
                .args([
                    "shard",
                    "run",
                    scenario.to_str().unwrap(),
                    "--shard",
                    &format!("{i}/2"),
                    "--out",
                    part.to_str().unwrap(),
                    "--coordinate",
                    &addr,
                    "--stop-ci",
                    "0.9",
                    "--threads",
                    "2",
                ])
                .stderr(Stdio::piped())
                .spawn()
                .expect("shard spawns");
            (part, child)
        })
        .collect();

    let mut shard_stops = Vec::new();
    let mut parts = Vec::new();
    for (i, (part, child)) in children.into_iter().enumerate() {
        let out = child.wait_with_output().expect("shard exits");
        assert_success(&out, &format!("coordinated shard {i}/2"));
        let summary = parse_summary(&stderr_of(&out));
        shard_stops.push(summary["stop"].clone());
        parts.push(part);
    }
    let out = coordinator.wait_with_output().expect("coordinator exits");
    assert_success(&out, "coordinator");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let summary = stdout
        .lines()
        .find(|line| line.starts_with("shard-coordinate "))
        .unwrap_or_else(|| panic!("no `shard-coordinate` summary:\n{stdout}"));

    // The loose ±90% rule fires inside the budget, every process agrees
    // on the stop indices, and runs were actually saved.
    let stops = summary
        .split_whitespace()
        .find_map(|token| token.strip_prefix("stops="))
        .unwrap_or_else(|| panic!("no stops= field: {summary}"));
    assert!(
        stops.split(',').all(|s| s.parse::<usize>().is_ok()),
        "every cell must stop at a numeric index: {summary}"
    );
    assert_eq!(shard_stops, vec![stops.to_string(); 2], "shards disagree");
    let saved = summary
        .split_whitespace()
        .find_map(|token| token.strip_prefix("runs-saved="))
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or_else(|| panic!("no runs-saved= field: {summary}"));
    assert!(saved > 0, "an early stop saves fleet runs: {summary}");

    // The truncated parts still merge into a well-formed outcome.
    let merged = run(&[
        "shard",
        "merge",
        parts[0].to_str().unwrap(),
        parts[1].to_str().unwrap(),
        "--json",
    ]);
    assert_success(&merged, "coordinated merge");
    let outcome = String::from_utf8_lossy(&merged.stdout);
    bcbpt_core::ScenarioOutcome::from_json(&outcome).expect("merged outcome parses");
}
