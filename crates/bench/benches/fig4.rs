//! Criterion wrapper around the Fig. 4 regeneration (BCBPT threshold
//! sweep) at a reduced scale.

use bcbpt_cluster::Protocol;
use bcbpt_core::{fig4, ExperimentConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut base = ExperimentConfig::quick(Protocol::Bitcoin);
    base.net.num_nodes = 150;
    base.warmup_ms = 2_000.0;
    base.runs = 5;
    c.bench_function("figures/fig4_quick", |b| {
        b.iter(|| {
            let bundle = fig4(&base).expect("fig4 runs");
            assert_eq!(bundle.figure.series.len(), 3);
            black_box(bundle)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4
}
criterion_main!(benches);
