//! Campaign-runner benchmark: the same multi-run campaign executed serially
//! and through the thread pool (the §V.B measuring loop the parallel runner
//! accelerates). Output equality between the two modes is asserted on every
//! sample — this bench doubles as a determinism check under load.

use bcbpt_cluster::Protocol;
use bcbpt_core::ExperimentConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn campaign_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
    cfg.net.num_nodes = 120;
    cfg.warmup_ms = 2_000.0;
    cfg.window_ms = 15_000.0;
    cfg.runs = 16;
    cfg
}

fn bench_campaign(c: &mut Criterion) {
    let reference = campaign_config().run_serial().expect("campaign runs");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("campaign/16_runs_120_nodes");
    group.sample_size(10);
    for threads in [1usize, cores] {
        let cfg = campaign_config();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads={threads}")),
            &(cfg, threads),
            |b, (cfg, threads)| {
                b.iter(|| {
                    let result = cfg.run_with_threads(*threads).expect("campaign runs");
                    assert_eq!(&result, &reference, "parallel output diverged");
                    black_box(result.runs.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_campaign
}
criterion_main!(benches);
