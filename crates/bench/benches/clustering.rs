//! Microbenchmarks of cluster formation: how expensive is the warmup phase
//! per protocol (this is where BCBPT pays its ping overhead).

use bcbpt_cluster::Protocol;
use bcbpt_net::{NetConfig, Network};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn cluster_formation(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering/warmup_200_nodes");
    group.sample_size(10);
    for protocol in [Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.label()),
            &protocol,
            |b, &p| {
                b.iter(|| {
                    let mut config = NetConfig::test_scale();
                    config.num_nodes = 200;
                    let mut net = Network::build(config, p.build_policy(), 7).unwrap();
                    net.warmup_ms(2_000.0);
                    black_box(net.links().edge_count())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, cluster_formation);
criterion_main!(benches);
