//! Microbenchmarks of the simulation substrate: event-queue throughput and
//! network message handling. These quantify the simulator itself, not the
//! paper's results (see the `fig3`/`fig4` benches for those).

use bcbpt_net::{NetConfig, Network, RandomPolicy};
use bcbpt_sim::{Control, Engine, SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn engine_schedule_pop(c: &mut Criterion) {
    c.bench_function("engine/schedule_and_drain_10k", |b| {
        b.iter_batched(
            Engine::<u64>::new,
            |mut engine| {
                for i in 0..10_000u64 {
                    engine.schedule_at(SimTime::from_micros(i * 37 % 100_000), i);
                }
                let mut sum = 0u64;
                engine.run(|_, v| {
                    sum = sum.wrapping_add(v);
                    Control::Continue
                });
                black_box(sum)
            },
            BatchSize::SmallInput,
        );
    });
}

fn engine_timer_cascade(c: &mut Criterion) {
    c.bench_function("engine/timer_cascade_10k", |b| {
        b.iter(|| {
            let mut engine = Engine::new();
            engine.schedule_in(SimDuration::from_micros(1), 0u32);
            let mut n = 0u32;
            engine.run(|engine, _| {
                n += 1;
                if n < 10_000 {
                    engine.schedule_in(SimDuration::from_micros(1), n);
                }
                Control::Continue
            });
            black_box(n)
        });
    });
}

fn network_flood(c: &mut Criterion) {
    c.bench_function("network/flood_200_nodes", |b| {
        b.iter_batched(
            || {
                let mut config = NetConfig::test_scale();
                config.num_nodes = 200;
                Network::build(config, Box::new(RandomPolicy::new()), 42).unwrap()
            },
            |mut net| {
                let origin = net.pick_online_node().unwrap();
                net.inject_watched_tx(origin, None).unwrap();
                net.run_for_ms(30_000.0);
                black_box(net.watch().unwrap().reached_count())
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = engine_schedule_pop, engine_timer_cascade, network_flood
}
criterion_main!(benches);
