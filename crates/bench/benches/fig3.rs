//! Criterion wrapper around the Fig. 3 regeneration (Bitcoin vs LBC vs
//! BCBPT) at a reduced scale, asserting the paper's ordering on every run.

use bcbpt_cluster::Protocol;
use bcbpt_core::{fig3, ExperimentConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut base = ExperimentConfig::quick(Protocol::Bitcoin);
    base.net.num_nodes = 150;
    base.warmup_ms = 2_000.0;
    base.runs = 5;
    c.bench_function("figures/fig3_quick", |b| {
        b.iter(|| {
            let bundle = fig3(&base).expect("fig3 runs");
            // The paper's headline: BCBPT mean below Bitcoin mean.
            let rows: Vec<(String, Vec<f64>)> = bundle
                .table
                .rows()
                .map(|(l, v)| (l.to_string(), v.to_vec()))
                .collect();
            let mean_of = |label: &str| {
                rows.iter()
                    .find(|(l, _)| l.starts_with(label))
                    .map(|(_, v)| v[0])
                    .unwrap()
            };
            assert!(mean_of("bcbpt") < mean_of("bitcoin"));
            black_box(bundle)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3
}
criterion_main!(benches);
